// Package cfg builds intraprocedural control-flow graphs over Go function
// bodies for the flow-sensitive analyzers in internal/analysis (lock
// discipline, goroutine-leak, and close-on-all-paths checks). It is
// deliberately small and stdlib-only: blocks hold the statements (and branch
// conditions) they execute in order, edges follow every structured construct
// — if/else, the three for forms, range, switch/type-switch with
// fallthrough, select, labeled break/continue, and goto — and two synthetic
// exits distinguish how a function can end:
//
//   - Exit: reached by return statements and by falling off the end of the
//     body. "Must happen on every path" properties are checked against paths
//     that reach Exit.
//   - PanicExit: reached by explicit panic(...) calls, os.Exit, and
//     runtime.Goexit. Analyzers generally ignore these paths — any call can
//     panic, so flagging explicit panics alone would be arbitrary noise.
//
// Deferred calls are collected (in registration order, with their positions)
// rather than modeled as edges: a defer runs on every exit after its
// registration, which is exactly the query analyzers ask ("is there a defer
// of mu.Unlock / f.Close?"), and modeling the defer chain as edges would
// double the graph for no added precision.
//
// Function literals inside the body are NOT descended into — each literal
// gets its own graph via New when the analyzer needs one.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one straight-line run of statements. Nodes holds, in execution
// order, the statements of the block plus any branch condition evaluated at
// its end. Succs are the possible successors; when the block ends in a
// two-way conditional branch, Cond is the condition and Succs[0]/Succs[1]
// are the true/false targets.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Cond  ast.Expr

	// Range is set on a range-loop head block: the block's last node is the
	// ranged expression and each iteration re-enters here. Analyzers use it
	// to recognize blocking channel ranges without re-walking the body.
	Range *ast.RangeStmt
	// Select is set on a select dispatch block: control blocks here until
	// one comm clause is ready. The clause statements live in the successor
	// blocks.
	Select *ast.SelectStmt

	// kind labels synthetic blocks for debugging output.
	kind string
}

// String renders the block for test failure messages.
func (b *Block) String() string {
	if b.kind != "" {
		return fmt.Sprintf("b%d(%s)", b.Index, b.kind)
	}
	return fmt.Sprintf("b%d", b.Index)
}

// Defer is one deferred call, in registration order.
type Defer struct {
	Call *ast.CallExpr
	Pos  token.Pos
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks    []*Block
	Entry     *Block
	Exit      *Block // returns and fall-off-the-end
	PanicExit *Block // explicit panic / os.Exit / runtime.Goexit
	Defers    []Defer
}

// New builds the graph of one function body (from an *ast.FuncDecl or
// *ast.FuncLit). A nil body yields a trivial Entry→Exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		labels:      make(map[string]*labelTargets),
		labelBlocks: make(map[string]*Block),
		gotos:       make(map[string][]*Block),
	}
	b.g = &Graph{}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.g.PanicExit = b.newBlock("panic")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Falling off the end of the body is a normal exit.
	b.jump(b.g.Exit)
	b.patchGotos()
	return b.g
}

// labelTargets records where a labeled break/continue lands.
type labelTargets struct {
	breakTo    *Block
	continueTo *Block
}

type builder struct {
	g   *Graph
	cur *Block // nil while the current position is unreachable

	// breakTo/continueTo are the innermost unlabeled targets.
	breakTo    *Block
	continueTo *Block

	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels.
	pendingLabel string
	labels       map[string]*labelTargets
	// labelBlocks maps label name -> block starting at the label (goto
	// targets); gotos seen before their label are patched at the end.
	labelBlocks map[string]*Block
	gotos       map[string][]*Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from -> to.
func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an unconditional edge to target and
// leaves the builder unreachable until a new block starts.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// startBlock begins a new block and makes it current. If the previous block
// was still open it falls through into the new one.
func (b *builder) startBlock(blk *Block) *Block {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, opening a fresh (unreachable)
// block if control cannot reach here — dead code still gets nodes so
// analyzers can see it, it just has no predecessors.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label both names the following loop/switch (for labeled
		// break/continue) and is a goto target.
		start := b.newBlock("label:" + s.Label.Name)
		b.startBlock(start)
		b.labelBlocks[s.Label.Name] = start
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labels[s.Label.Name]; t != nil {
					b.jump(t.breakTo)
					return
				}
			}
			if b.breakTo != nil {
				b.jump(b.breakTo)
				return
			}
			b.cur = nil
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labels[s.Label.Name]; t != nil && t.continueTo != nil {
					b.jump(t.continueTo)
					return
				}
			}
			if b.continueTo != nil {
				b.jump(b.continueTo)
				return
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				if t, ok := b.gotoTarget(s.Label.Name); ok {
					b.jump(t)
				} else if b.cur != nil {
					b.gotos[s.Label.Name] = append(b.gotos[s.Label.Name], b.cur)
					b.cur = nil
				}
				return
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchStmt; a stray fallthrough ends the block.
			b.cur = nil
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		cond.Cond = s.Cond
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		b.edge(cond, then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = then
			b.stmt(s.Body)
			b.jump(after)
			b.cur = els
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.edge(cond, after)
			b.cur = then
			b.stmt(s.Body)
			b.jump(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			head.Cond = s.Cond
			b.edge(head, body)
			b.edge(head, after)
		} else {
			b.edge(head, body)
		}
		b.loopBody(s.Body, body, after, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.startBlock(head)
		b.add(s.X) // the ranged expression; body statements get their own blocks
		head.Range = s
		b.edge(head, body)
		b.edge(head, after)
		b.loopBody(s.Body, body, after, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		// The select blocks in a dedicated dispatch block; its clause
		// statements live in the case blocks below.
		sel := b.startBlock(b.newBlock("select"))
		sel.Select = s
		after := b.newBlock("select.after")
		savedBreak := b.breakTo
		b.breakTo = after
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(sel, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.breakTo = savedBreak
		// A case-less select{} blocks forever: sel has no successors and
		// `after` stays unreachable.
		b.cur = after

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, Defer{Call: s.Call, Pos: s.Pos()})

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.jump(b.g.PanicExit)
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: plain nodes.
		b.add(s)
	}
}

// loopBody builds a loop body with break/continue targets registered (and
// bound to the pending label, if the loop was labeled), then closes the back
// edge to cont.
func (b *builder) loopBody(body *ast.BlockStmt, start, breakTo, continueTo *Block) {
	savedBreak, savedCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &labelTargets{breakTo: breakTo, continueTo: continueTo}
		b.pendingLabel = ""
	}
	b.cur = start
	b.stmt(body)
	b.jump(continueTo)
	b.breakTo, b.continueTo = savedBreak, savedCont
}

// switchStmt builds expression and type switches: the tag block branches to
// every case (and to after when there is no default); fallthrough chains
// case bodies.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	head := b.cur
	after := b.newBlock("switch.after")
	savedBreak := b.breakTo
	b.breakTo = after
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &labelTargets{breakTo: after}
		b.pendingLabel = ""
	}

	var caseBodies []*Block
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		blk := b.newBlock("case")
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blk)
		caseBodies = append(caseBodies, blk)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.cur = caseBodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(s)
		}
		if falls && i+1 < len(caseBodies) {
			b.jump(caseBodies[i+1])
		} else {
			b.jump(after)
		}
	}
	b.breakTo = savedBreak
	b.cur = after
}

func (b *builder) gotoTarget(name string) (*Block, bool) {
	t, ok := b.labelBlocks[name]
	return t, ok
}

// patchGotos wires forward gotos to their (later-seen) labels; a goto to a
// label that never appears (impossible in type-checked code) falls to Exit.
func (b *builder) patchGotos() {
	for name, srcs := range b.gotos {
		target, ok := b.labelBlocks[name]
		if !ok {
			target = b.g.Exit
		}
		for _, src := range srcs {
			b.edge(src, target)
		}
	}
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin, os.Exit, or runtime.Goexit. This is a
// syntactic check — the cfg package has no type information — but the three
// names are unambiguous in practice and analyzers treat PanicExit paths
// leniently anyway.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			full := pkg.Name + "." + fun.Sel.Name
			return full == "os.Exit" || full == "runtime.Goexit"
		}
	}
	return false
}

// Reachable returns the blocks reachable from the entry, in index order —
// handy for tests and for analyzers that want to skip dead code.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph for debugging: one line per block with its
// successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		fmt.Fprintf(&sb, " (%d nodes)\n", len(b.Nodes))
	}
	return sb.String()
}
