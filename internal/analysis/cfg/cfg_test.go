package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"patchdb/internal/analysis/cfg"
)

// build parses a function body and returns its graph.
func build(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// reachable reports whether blk is reachable from the entry.
func reachable(g *cfg.Graph, blk *cfg.Block) bool {
	for _, b := range g.Reachable() {
		if b == blk {
			return true
		}
	}
	return false
}

// findBlock returns the first block (in index order) satisfying pred.
func findBlock(g *cfg.Graph, pred func(*cfg.Block) bool) *cfg.Block {
	for _, b := range g.Blocks {
		if pred(b) {
			return b
		}
	}
	return nil
}

func TestLinearBodyReachesExit(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if !reachable(g, g.Exit) {
		t.Errorf("exit not reachable:\n%s", g)
	}
	if reachable(g, g.PanicExit) {
		t.Errorf("panic exit reachable without a panic:\n%s", g)
	}
}

func TestIfElseBranches(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n\tx = 2\n} else {\n\tx = 3\n}\n_ = x")
	cond := findBlock(g, func(b *cfg.Block) bool { return b.Cond != nil })
	if cond == nil {
		t.Fatalf("no conditional block:\n%s", g)
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2 (true/false):\n%s", len(cond.Succs), g)
	}
	if !reachable(g, g.Exit) {
		t.Errorf("exit not reachable:\n%s", g)
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := build(t, "if true {\n\treturn\n}\nreturn")
	// Both returns must flow to Exit and nothing else may.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("return block %s does not edge to exit:\n%s", b, g)
				}
			}
		}
	}
}

func TestPanicEdgesToPanicExit(t *testing.T) {
	g := build(t, "panic(\"boom\")")
	if !reachable(g, g.PanicExit) {
		t.Errorf("panic exit not reachable:\n%s", g)
	}
	if reachable(g, g.Exit) {
		t.Errorf("normal exit reachable past an unconditional panic:\n%s", g)
	}
}

func TestOsExitIsTerminal(t *testing.T) {
	g := build(t, "os.Exit(1)")
	if !reachable(g, g.PanicExit) {
		t.Errorf("os.Exit does not reach panic exit:\n%s", g)
	}
	if reachable(g, g.Exit) {
		t.Errorf("normal exit reachable past os.Exit:\n%s", g)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	g := build(t, "return\nx := 1\n_ = x")
	dead := findBlock(g, func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				return true
			}
		}
		return false
	})
	if dead == nil {
		t.Fatalf("dead statements dropped from the graph:\n%s", g)
	}
	if reachable(g, dead) {
		t.Errorf("statements after return are reachable:\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 10; i++ {\n\t_ = i\n}")
	// Some block must loop back to an earlier block (the head).
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit && s != g.PanicExit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Errorf("for loop has no back edge:\n%s", g)
	}
	if !reachable(g, g.Exit) {
		t.Errorf("exit not reachable (cond loop must be exitable):\n%s", g)
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := build(t, "for {\n\tif true {\n\t\tbreak\n\t}\n}")
	if !reachable(g, g.Exit) {
		t.Errorf("break does not escape the loop:\n%s", g)
	}
	g = build(t, "for {\n\t_ = 1\n}")
	if reachable(g, g.Exit) {
		t.Errorf("exit reachable from a breakless infinite loop:\n%s", g)
	}
}

func TestRangeHead(t *testing.T) {
	g := build(t, "ch := make(chan int)\nfor v := range ch {\n\t_ = v\n}")
	head := findBlock(g, func(b *cfg.Block) bool { return b.Range != nil })
	if head == nil {
		t.Fatalf("no range head block:\n%s", g)
	}
	if len(head.Succs) != 2 {
		t.Errorf("range head has %d succs, want 2 (body/after):\n%s", len(head.Succs), g)
	}
	if !reachable(g, g.Exit) {
		t.Errorf("exit not reachable past a range loop:\n%s", g)
	}
}

func TestSelectDispatch(t *testing.T) {
	g := build(t, "a := make(chan int)\nb := make(chan int)\nselect {\ncase <-a:\ncase <-b:\n}")
	sel := findBlock(g, func(b *cfg.Block) bool { return b.Select != nil })
	if sel == nil {
		t.Fatalf("no select dispatch block:\n%s", g)
	}
	if len(sel.Succs) != 2 {
		t.Errorf("select dispatch has %d succs, want one per clause (2):\n%s", len(sel.Succs), g)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, "select {}\n")
	sel := findBlock(g, func(b *cfg.Block) bool { return b.Select != nil })
	if sel == nil {
		t.Fatalf("no select dispatch block:\n%s", g)
	}
	if len(sel.Succs) != 0 {
		t.Errorf("empty select has successors:\n%s", g)
	}
	if reachable(g, g.Exit) {
		t.Errorf("exit reachable past select{}:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "switch x := 1; x {\ncase 1:\n\tfallthrough\ncase 2:\n\t_ = x\ndefault:\n}")
	if !reachable(g, g.Exit) {
		t.Fatalf("exit not reachable:\n%s", g)
	}
	// The fallthrough case must edge into the next case body: the block
	// holding `_ = x` then has two predecessors — the switch dispatch and
	// the falling-through case — where without fallthrough it has one.
	target := findBlock(g, func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				return true
			}
		}
		return false
	})
	if target == nil {
		t.Fatalf("no case-2 body block:\n%s", g)
	}
	preds := 0
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == target {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Errorf("fallthrough target has %d predecessors, want 2 (dispatch + fallthrough):\n%s", preds, g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}")
	if !reachable(g, g.Exit) {
		t.Errorf("labeled break does not escape both loops:\n%s", g)
	}
}

func TestLabeledContinueStaysInLoop(t *testing.T) {
	g := build(t, "outer:\nfor {\n\tfor {\n\t\tcontinue outer\n\t}\n}")
	if reachable(g, g.Exit) {
		t.Errorf("continue to an infinite outer loop must not reach exit:\n%s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "goto done\n_ = 1\ndone:\n_ = 2")
	// The skipped statement is dead; the label target is reachable.
	if !reachable(g, g.Exit) {
		t.Errorf("goto target does not flow to exit:\n%s", g)
	}
	dead := findBlock(g, func(b *cfg.Block) bool {
		return len(b.Nodes) == 1 && !reachable(g, b)
	})
	if dead == nil {
		t.Errorf("statement jumped over by goto is not dead:\n%s", g)
	}
}

func TestDefersCollectedInOrder(t *testing.T) {
	g := build(t, "defer one()\nif true {\n\tdefer two()\n}\ndefer three()")
	if len(g.Defers) != 3 {
		t.Fatalf("got %d defers, want 3:\n%s", len(g.Defers), g)
	}
	for i := 1; i < len(g.Defers); i++ {
		if g.Defers[i].Pos <= g.Defers[i-1].Pos {
			t.Errorf("defers out of registration order")
		}
	}
	names := []string{"one", "two", "three"}
	for i, d := range g.Defers {
		id, ok := d.Call.Fun.(*ast.Ident)
		if !ok || id.Name != names[i] {
			t.Errorf("defer %d: got %v, want call to %s", i, d.Call.Fun, names[i])
		}
	}
}

func TestNilBody(t *testing.T) {
	g := cfg.New(nil)
	if !reachable(g, g.Exit) {
		t.Errorf("nil body must fall through to exit:\n%s", g)
	}
}
