package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/types"
	"sort"
)

// The fact layer lets analyzers export per-object knowledge ("this function
// transitively reads the wall clock", "this helper closes its io.Closer
// argument") that the driver propagates across packages in dependency
// order, go/analysis-style. Facts are keyed by a canonical object key that
// is stable across loads — and therefore serializable into the lint cache:
// a cached package contributes exactly the facts it would have exported if
// re-analyzed, and a dependent package's cache entry is invalidated when
// (and only when) the facts it imported change.
//
// A fact is a (analyzer, name, payload) triple on one object. Payloads are
// short strings (a witness chain, a parameter-index list); analyzers parse
// their own payloads.

// ObjKey returns the canonical cross-load key of a package-level object or
// method: "pkgpath.Name" for package-level functions and variables,
// "pkgpath.(RecvType).Name" for methods. Objects without a package (locals,
// builtins) have no stable key and yield "".
func ObjKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	key := obj.Pkg().Path() + "."
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				return key + "(" + named.Obj().Name() + ")." + obj.Name()
			}
			return "" // receiver on an unnamed type; no stable key
		}
	}
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "" // not package-level
	}
	return key + obj.Name()
}

// FactView is read-only access to facts imported from already-analyzed
// packages.
type FactView interface {
	// Fact returns the payload of the named fact (namespaced as
	// "analyzer/name") on the object with the given key.
	Fact(objKey, fact string) (string, bool)
}

// FactSet is a concrete fact store: objKey -> "analyzer/name" -> payload.
// The zero value is not usable; call NewFactSet.
type FactSet struct {
	m map[string]map[string]string
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[string]map[string]string)}
}

// Fact implements FactView. A nil *FactSet is a valid empty view.
func (s *FactSet) Fact(objKey, fact string) (string, bool) {
	if s == nil {
		return "", false
	}
	payload, ok := s.m[objKey][fact]
	return payload, ok
}

// add records a fact; empty keys are dropped (unkeyable objects).
func (s *FactSet) add(objKey, fact, payload string) {
	if objKey == "" {
		return
	}
	inner, ok := s.m[objKey]
	if !ok {
		inner = make(map[string]string)
		s.m[objKey] = inner
	}
	inner[fact] = payload
}

// Merge copies every fact of other into s.
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for objKey, inner := range other.m {
		for fact, payload := range inner {
			s.add(objKey, fact, payload)
		}
	}
}

// Len returns the number of (object, fact) pairs in the set.
func (s *FactSet) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, inner := range s.m {
		n += len(inner)
	}
	return n
}

// Encode serializes the set canonically: json.Marshal sorts map keys, so
// equal fact sets encode to equal bytes regardless of insertion order.
func (s *FactSet) Encode() []byte {
	if s == nil || len(s.m) == 0 {
		return []byte("{}")
	}
	data, err := json.Marshal(s.m)
	if err != nil {
		// map[string]map[string]string cannot fail to marshal.
		panic("analysis: encode facts: " + err.Error())
	}
	return data
}

// DecodeFactSet parses bytes produced by Encode.
func DecodeFactSet(data []byte) (*FactSet, error) {
	s := NewFactSet()
	if len(data) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(data, &s.m); err != nil {
		return nil, err
	}
	if s.m == nil {
		s.m = make(map[string]map[string]string)
	}
	return s, nil
}

// Hash returns a hex digest of the canonical encoding — the value that
// enters dependent packages' cache keys.
func (s *FactSet) Hash() string {
	sum := sha256.Sum256(s.Encode())
	return hex.EncodeToString(sum[:])
}

// factUnion is the FactView an analyzer pass sees: its own unit's exports
// layered over the imported facts, so intra-package helpers resolve the
// same way as cross-package ones.
type factUnion struct {
	own      *FactSet
	imported FactView
}

func (u factUnion) Fact(objKey, fact string) (string, bool) {
	if payload, ok := u.own.Fact(objKey, fact); ok {
		return payload, ok
	}
	if u.imported == nil {
		return "", false
	}
	return u.imported.Fact(objKey, fact)
}

// sortedObjKeys returns the set's object keys in sorted order (for
// deterministic iteration in tests and debug output).
func (s *FactSet) sortedObjKeys() []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
