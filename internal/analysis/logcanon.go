package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hubLoggerPath reports whether an import path belongs to the long-running
// server and pipeline packages whose diagnostics must flow through the
// telemetry hub's structured logger: ad-hoc fmt.Print*/log.Print* output
// there bypasses the /debug/logs ring, loses the correlation ID, and
// interleaves rawly with the JSON stream operators actually collect. CLIs
// (patchdb/cmd/...) own their stdout and are deliberately outside the set.
func hubLoggerPath(path string) bool {
	for _, prefix := range []string{
		"patchdb/internal/store",
		"patchdb/internal/pipeline",
		"patchdb/internal/telemetry",
		"patchdb/internal/nvd",
		"patchdb/internal/retry",
		"patchdb/internal/checkpoint",
	} {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// bannedPrinters maps package import path to the package-level functions that
// write unstructured output to process-global destinations. Writer-explicit
// variants (fmt.Fprintf, fmt.Sprintf) are fine: they do not smuggle output
// into stdout/stderr behind the caller's back.
var bannedPrinters = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// LogCanon enforces the logging canon of server and pipeline packages: all
// diagnostic output goes through the telemetry hub's slog logger (structured,
// correlated, ring-buffered on /debug/logs), never through fmt.Print* or the
// stdlib log package's process-global printers. Test files are exempt —
// t.Log output is the test harness's problem, and tests may print freely
// while debugging.
var LogCanon = &Analyzer{
	Name: "logcanon",
	Doc:  "server/pipeline packages must log via the telemetry hub's structured logger, not fmt.Print*/log.Print*",
	Run:  runLogCanon,
}

func runLogCanon(pass *Pass) {
	if !hubLoggerPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			banned, ok := bannedPrinters[fn.Pkg().Path()]
			if !ok || !banned[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // a method that happens to be named Printf is fine
			}
			pass.Reportf(call.Pos(),
				"%s.%s bypasses the hub's structured logger; use telemetry.Hub.Logger (slog)",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}
