package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Package is one type-checked unit of source: a directory's library files
// (plus its in-package tests) or a directory's external test package.
type Package struct {
	// ImportPath is the package's module-relative import path. External test
	// packages carry a ".test" suffix so the two units of one directory stay
	// distinguishable.
	ImportPath string
	// Dir is the absolute directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved against the module
// tree on disk, everything else is type-checked from GOROOT source via the
// go/importer "source" compiler. No `go list` subprocess, no export data —
// the loader works in any environment that has GOROOT sources.
type Loader struct {
	// Root is the module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.ImporterFrom
	deps    map[string]*types.Package // import cache: non-test files only
	loading map[string]bool           // cycle guard

	// mu serializes imports: the GOROOT source importer and the deps map
	// are not safe for the driver's concurrent type-checks.
	mu sync.Mutex
	// sourceLoads counts type-checks performed from source (units and
	// module-internal imports; GOROOT packages are excluded). The driver's
	// warm-cache invariant is that this stays zero.
	sourceLoads atomic.Int64
}

// SourceLoads reports how many packages have been type-checked from source
// by this loader.
func (l *Loader) SourceLoads() int64 { return l.sourceLoads.Load() }

// NewLoader creates a loader for the module rooted at root. The module path
// is read from root's go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: read go.mod: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     std,
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree (library files only, matching the compiler's view of an
// import), anything else defers to the GOROOT source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.importLocked(path)
}

func (l *Loader) importLocked(path string) (*types.Package, error) {
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.ImportFrom(path, l.Root, 0)
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pdir := l.dirFor(path)
	files, err := l.parseDir(pdir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	pkg, _, err := l.checkWith(lockedImporter{l}, path, files)
	if err != nil {
		return nil, err
	}
	l.deps[path] = pkg
	return pkg, nil
}

// lockedImporter resolves nested imports while the loader's mutex is
// already held, avoiding re-entrant locking during a module-internal load.
type lockedImporter struct{ l *Loader }

func (li lockedImporter) Import(path string) (*types.Package, error) {
	return li.l.importLocked(path)
}

func (li lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return li.l.importLocked(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, rel)
}

// pathFor maps a directory under Root to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if keep != nil && !keep(name) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	return l.checkWith(l, path, files)
}

func (l *Loader) checkWith(imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	l.sourceLoads.Add(1)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var errs []error
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, nil, fmt.Errorf("type-check %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return pkg, info, nil
}

// LoadDir loads the library (non-test) files of one directory as a single
// package under the given import path. The path does not need to correspond
// to the directory's real location — golden-test packages use synthetic
// paths to exercise path-gated analyzers.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir, func(name string) bool {
		return !strings.HasSuffix(name, "_test.go")
	})
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, info, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// Load resolves patterns ("./...", "dir/...", "dir") relative to cwd into
// package units and type-checks each: a directory yields one unit for its
// library + in-package test files and, when present, a second ".test" unit
// for its external test package. testdata, vendor, and hidden directories
// are skipped.
func (l *Loader) Load(cwd string, patterns ...string) ([]*Package, error) {
	dirs, err := l.ResolveDirs(cwd, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadUnits(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// ResolveDirs expands patterns ("./...", "dir/...", "dir") relative to cwd
// into the sorted list of candidate package directories, skipping testdata,
// vendor, hidden, and underscore-prefixed directories on recursive walks.
func (l *Loader) ResolveDirs(cwd string, patterns ...string) ([]string, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		if !recursive {
			dirSet[dir] = true
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != dir && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			dirSet[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadUnit type-checks one unit of a directory: the base package (library
// plus in-package tests) when external is false, the external _test package
// when true.
func (l *Loader) LoadUnit(dir string, external bool) (*Package, error) {
	all, err := l.parseDir(dir, nil)
	if err != nil {
		return nil, err
	}
	importPath, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") == external {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no files for unit %s (external=%v)", importPath, external)
	}
	if external {
		importPath += ".test"
	}
	pkg, info, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// loadUnits loads the package units of one directory: the base package with
// its in-package tests, and the external (_test-suffixed) test package.
func (l *Loader) loadUnits(dir string) ([]*Package, error) {
	all, err := l.parseDir(dir, nil)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	importPath, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	var base, external []*ast.File
	for _, f := range all {
		if strings.HasSuffix(f.Name.Name, "_test") {
			external = append(external, f)
		} else {
			base = append(base, f)
		}
	}
	var units []*Package
	if len(base) > 0 {
		pkg, info, err := l.check(importPath, base)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{ImportPath: importPath, Dir: dir, Fset: l.fset, Files: base, Types: pkg, Info: info})
	}
	if len(external) > 0 {
		pkg, info, err := l.check(importPath+".test", external)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{ImportPath: importPath + ".test", Dir: dir, Fset: l.fset, Files: external, Types: pkg, Info: info})
	}
	return units, nil
}
