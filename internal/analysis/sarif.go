package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log — the interchange
// format CI systems ingest for code-scanning annotations. Paths are emitted
// relative to root with forward slashes; rules are the analyzer catalog
// (plus the internal directive check), so a SARIF viewer can show each
// check's doc line.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []*Analyzer, root string) error {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifArtifact struct {
		URI string `json:"uri"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifPhysical struct {
		ArtifactLocation sarifArtifact `json:"artifactLocation"`
		Region           sarifRegion   `json:"region"`
	}
	type sarifLocation struct {
		PhysicalLocation sarifPhysical `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	type sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	type sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	type sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	type sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}

	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               DirectiveCheck,
		ShortDescription: sarifMessage{Text: "lint:ignore directives are well-formed and carry a reason"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, diag := range diags {
		uri := diag.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  diag.Check,
			Level:   "error", // every finding fails the build; there is no warning tier
			Message: sarifMessage{Text: diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: diag.Pos.Line, StartColumn: diag.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "patchdb-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
