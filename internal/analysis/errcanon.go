package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrCanon enforces the canonical-error contract everywhere in the module:
// sentinel errors (package-level `ErrFoo` variables, io.EOF, ...) are
// matched with errors.Is — never `==`/`!=` or a switch, which wrapped
// errors silently fail — and fmt.Errorf keeps chains matchable by wrapping
// error operands with %w instead of flattening them through %v/%s.
var ErrCanon = &Analyzer{
	Name: "errcanon",
	Doc:  "match canonical errors with errors.Is and wrap with %w, not ==/!= or %v",
	Run:  runErrCanon,
}

func runErrCanon(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		if name, ok := sentinelName(pass, pair[1]); ok && isErrorType(pass.TypeOf(pair[0])) {
			pass.Reportf(be.OpPos,
				"canonical error compared with %s; use errors.Is(err, %s) so wrapped errors still match", be.Op, name)
			return
		}
	}
}

func checkSentinelSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.TypeOf(sw.Tag)) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelName(pass, e); ok {
				pass.Reportf(e.Pos(),
					"canonical error matched by switch case; use errors.Is(err, %s) so wrapped errors still match", name)
			}
		}
	}
}

// sentinelName reports whether e denotes a package-level error variable
// following the canonical naming convention (Err* or EOF), returning its
// display name.
func sentinelName(pass *Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	obj, ok := pass.ObjectOf(id).(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(obj.Type()) {
		return "", false
	}
	if !strings.HasPrefix(obj.Name(), "Err") && obj.Name() != "EOF" {
		return "", false
	}
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return pkg.Name + "." + obj.Name(), true
		}
	}
	return obj.Name(), true
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed operand
// with a flattening verb (%v, %s, %q, ...) instead of %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	if len(verbs) != len(args) {
		return // indexed or starred formats; out of scope
	}
	for i, verb := range verbs {
		if verb == 'w' || verb == '*' {
			continue
		}
		if isErrorType(pass.TypeOf(args[i])) {
			pass.Reportf(args[i].Pos(),
				"error formatted with %%%c detaches it from the chain; wrap with %%w so errors.Is keeps matching", verb)
		}
	}
}

// formatVerbs returns the verb letter consuming each successive operand of a
// Printf-style format ('*' entries mark width/precision operands). Explicit
// argument indexes make the mapping positional-unsafe, so they yield nil
// (as distinct from an empty, verb-free format).
func formatVerbs(format string) []rune {
	verbs := []rune{}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	spec:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break spec // literal %%
			case strings.ContainsRune("+-# 0.", rune(c)) || c >= '0' && c <= '9':
				// flags, width, precision digits
			case c == '*':
				verbs = append(verbs, '*')
			case c == '[':
				return nil // explicit argument index
			default:
				verbs = append(verbs, rune(c))
				break spec
			}
		}
	}
	return verbs
}

// isErrorType reports whether t implements the error interface and is an
// interface type (concrete error implementations compared by identity are a
// different, deliberate pattern).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := types.Unalias(t).Underlying().(*types.Interface); !ok {
		return false
	}
	return types.Implements(t, errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
