package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// artifactWriterPath reports whether an import path belongs to the packages
// that persist artifacts a crash or a concurrent reader could observe
// half-written: the root package (dataset JSON), the telemetry layer (run
// reports), the serving store, the checkpoint journal, and every CLI. These
// must route file writes through internal/atomicio's temp+fsync+rename;
// internal/atomicio itself is the one sanctioned direct writer and is
// deliberately outside this set.
func artifactWriterPath(path string) bool {
	if path == "patchdb" {
		return true
	}
	// Prefix matches so new subpackages of the covered trees (telemetry's
	// exporters especially) are covered the moment they exist.
	for _, prefix := range []string{
		"patchdb/internal/telemetry",
		"patchdb/internal/store",
		"patchdb/internal/checkpoint",
	} {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return strings.HasPrefix(path, "patchdb/cmd/")
}

// bannedOSWriters maps the os package's file-creating functions to the
// remedy named in the diagnostic. Reads (os.Open, os.ReadFile) are fine;
// only creation/truncation can leave a torn artifact behind.
var bannedOSWriters = map[string]string{
	"Create":     "use atomicio.WriteTo",
	"WriteFile":  "use atomicio.WriteFile",
	"OpenFile":   "use atomicio.WriteTo",
	"CreateTemp": "use atomicio.WriteTo (it owns the temp-file dance)",
}

// AtomicWrite enforces the crash-safety contract of artifact-writing
// packages: a reader (patchdb-serve reloading, a resumed build loading its
// journal) must never observe a half-written file, so every artifact write
// goes through internal/atomicio's write-to-temp, fsync, rename sequence.
// Direct os.Create / os.WriteFile / os.OpenFile / os.CreateTemp calls in
// those packages are flagged. Test files are exempt — tests routinely plant
// fixture (and deliberately corrupt) files with os.WriteFile.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "artifact files must be written via internal/atomicio (temp+fsync+rename), never direct os writes",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	if !artifactWriterPath(pass.Pkg.ImportPath) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // a method that happens to be named Create is fine
			}
			if remedy, banned := bannedOSWriters[fn.Name()]; banned {
				pass.Reportf(call.Pos(),
					"direct os.%s can leave a torn artifact on crash; %s", fn.Name(), remedy)
			}
			return true
		})
	}
}
