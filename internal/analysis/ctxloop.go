package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the cancellation contract: inside a function that takes
// (or closes over) a context.Context, loops that can spin for an unbounded
// number of iterations — `for {}`, while-style `for cond {}`, and worker
// loops ranging over a channel — must observe the context on their hot path
// via ctx.Done() or ctx.Err(). Counted and slice/map-range loops are
// considered bounded and exempt; the builder cancels those at their
// enclosing stage boundaries.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "unbounded loops in context-aware functions must check ctx.Done()/ctx.Err()",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxScope(pass, fd.Body, funcHasCtxParam(pass, fd))
		}
	}
}

// checkCtxScope walks a function body. inCtx records whether a
// context.Context parameter is lexically in scope (from this function or an
// enclosing one — function literals capture their parent's context).
func checkCtxScope(pass *Pass, body *ast.BlockStmt, inCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxScope(pass, n.Body, inCtx || funcLitHasCtxParam(pass, n))
			return false
		case *ast.ForStmt:
			if inCtx && unboundedFor(n) && !checksCtx(pass, n) {
				pass.Reportf(n.For, "unbounded loop in context-aware function never checks ctx.Done()/ctx.Err(); cancellation would be ignored here")
			}
		case *ast.RangeStmt:
			if inCtx && rangesOverChannel(pass, n) && !checksCtx(pass, n) {
				pass.Reportf(n.For, "channel-range worker loop never checks ctx.Done()/ctx.Err(); cancellation would be ignored here")
			}
		}
		return true
	})
}

// unboundedFor reports whether a for statement is infinite (`for {}`, or
// cond-less with init/post) or while-style (`for cond {}`).
func unboundedFor(n *ast.ForStmt) bool {
	if n.Cond == nil {
		return true
	}
	return n.Init == nil && n.Post == nil
}

func rangesOverChannel(pass *Pass, n *ast.RangeStmt) bool {
	t := pass.TypeOf(n.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// checksCtx reports whether the loop (condition or body, including select
// cases) contains a Done() or Err() call on a context.Context value, or a
// receive from one's Done channel.
func checksCtx(pass *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if isContextType(pass.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context (or an alias of it).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcHasCtxParam reports whether fd declares a context.Context parameter.
func funcHasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	return fieldsHaveCtx(pass, fd.Type.Params.List)
}

func funcLitHasCtxParam(pass *Pass, fl *ast.FuncLit) bool {
	if fl.Type.Params == nil {
		return false
	}
	return fieldsHaveCtx(pass, fl.Type.Params.List)
}

func fieldsHaveCtx(pass *Pass, fields []*ast.Field) bool {
	for _, f := range fields {
		if isContextType(pass.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}
