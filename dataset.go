package patchdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"patchdb/internal/atomicio"
)

// Record is one patch in a PatchDB dataset.
type Record struct {
	// ID is the commit hash.
	ID string `json:"id"`
	// Repo is the owning repository.
	Repo string `json:"repo"`
	// CVE is the CVE identifier for NVD-indexed patches ("" otherwise).
	CVE string `json:"cve,omitempty"`
	// Security is the verified label.
	Security bool `json:"security"`
	// Pattern is the pattern class for security patches (0 otherwise).
	Pattern Pattern `json:"pattern,omitempty"`
	// Source records provenance: "nvd", "wild", or "synthetic".
	Source string `json:"source"`
	// Text is the git patch text.
	Text string `json:"text"`
}

// Patch parses the record's patch text.
func (r *Record) Patch() (*Patch, error) { return ParsePatch(r.Text) }

// Dataset is an assembled PatchDB: NVD-based, wild-based, cleaned
// non-security, and synthetic components.
type Dataset struct {
	// NVD holds NVD-indexed security patches.
	NVD []Record `json:"nvd"`
	// Wild holds silent security patches discovered in the wild.
	Wild []Record `json:"wild"`
	// NonSecurity holds the cleaned non-security patches.
	NonSecurity []Record `json:"non_security"`
	// Synthetic holds oversampled artificial patches.
	Synthetic []Record `json:"synthetic"`
}

// Stats summarizes dataset sizes.
type Stats struct {
	NVD         int `json:"nvd"`
	Wild        int `json:"wild"`
	NonSecurity int `json:"non_security"`
	Synthetic   int `json:"synthetic"`
}

// Stats returns the component sizes.
func (d *Dataset) Stats() Stats {
	return Stats{
		NVD:         len(d.NVD),
		Wild:        len(d.Wild),
		NonSecurity: len(d.NonSecurity),
		Synthetic:   len(d.Synthetic),
	}
}

// SecurityPatches returns NVD and wild security records combined (the
// "natural" security patches).
func (d *Dataset) SecurityPatches() []Record {
	out := make([]Record, 0, len(d.NVD)+len(d.Wild))
	out = append(out, d.NVD...)
	out = append(out, d.Wild...)
	return out
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("encode dataset: %w", err)
	}
	return nil
}

// SaveJSON writes the dataset to a file atomically via the shared
// temp+fsync+rename helper (internal/atomicio), so a crash or full disk
// mid-write can never leave a truncated artifact where a previous good one
// stood.
func (d *Dataset) SaveJSON(path string) error {
	if err := atomicio.WriteTo(path, d.WriteJSON); err != nil {
		return fmt.Errorf("save dataset: %w", err)
	}
	return nil
}

// LoadDataset reads a dataset from JSON. Input that decodes but cannot be a
// faithful artifact is rejected: trailing data after the JSON document
// (e.g. the tail of an overwritten longer file) and records without an ID.
// Absent or null component arrays are normalized to empty slices.
func LoadDataset(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(r)
	var d Dataset
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("decode dataset: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("decode dataset: trailing data after JSON document")
	}
	if err := d.normalize(); err != nil {
		return nil, fmt.Errorf("decode dataset: %w", err)
	}
	return &d, nil
}

// normalize replaces null component arrays with empty ones and rejects
// records missing the ID every consumer keys on.
func (d *Dataset) normalize() error {
	for _, c := range []struct {
		name    string
		records *[]Record
	}{
		{"nvd", &d.NVD},
		{"wild", &d.Wild},
		{"non_security", &d.NonSecurity},
		{"synthetic", &d.Synthetic},
	} {
		if *c.records == nil {
			*c.records = []Record{}
			continue
		}
		for i, r := range *c.records {
			if r.ID == "" {
				return fmt.Errorf("component %s: record %d has no id", c.name, i)
			}
		}
	}
	return nil
}

// LoadDatasetFile reads a dataset from a JSON file.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load dataset: %w", err)
	}
	defer f.Close()
	return LoadDataset(f)
}

// Distribution counts the security patches of the dataset per pattern
// class, Table V style.
func (d *Dataset) Distribution() map[Pattern]int {
	out := make(map[Pattern]int, NumPatterns)
	for _, r := range d.SecurityPatches() {
		if r.Pattern != 0 {
			out[r.Pattern]++
		}
	}
	return out
}
