package patchdb

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"patchdb/internal/telemetry"
)

// telemetryTestConfig is a small but full-featured build: crawl, two pools,
// augmentation rounds, and synthesis, so every pipeline stage appears in the
// run report.
func telemetryTestConfig() BuilderConfig {
	return BuilderConfig{
		Seed:              11,
		NVDSize:           40,
		NonSecuritySize:   80,
		WildPools:         []int{400},
		RoundsPerPool:     []int{2},
		SyntheticPerPatch: 2,
	}
}

// TestBuildRunReport asserts the acceptance shape of the tentpole: a build
// with -telemetry-out semantics produces a RunReport JSON containing every
// pipeline stage, crawl accounting, nearest-link counters, a metrics
// snapshot, and a span tree.
func TestBuildRunReport(t *testing.T) {
	cfg := telemetryTestConfig()
	cfg.Telemetry = NewTelemetryHub()
	cfg.TelemetryOut = filepath.Join(t.TempDir(), "run-report.json")

	_, report, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Run == nil {
		t.Fatal("report.Run is nil")
	}

	data, err := os.ReadFile(cfg.TelemetryOut)
	if err != nil {
		t.Fatalf("run report file not written: %v", err)
	}
	var rr RunReport
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("run report is not valid JSON: %v", err)
	}
	if rr.Tool != "patchdb.Build" {
		t.Errorf("Tool = %q", rr.Tool)
	}

	// Every pipeline stage must appear with a positive duration.
	gotStages := map[string]RunReportStage{}
	for _, st := range rr.Stages {
		gotStages[st.Stage] = st
	}
	for _, want := range []Stage{StageCrawl, StageExtract, StageSearch, StageAugment, StageSynthesize} {
		st, ok := gotStages[string(want)]
		if !ok {
			t.Errorf("run report missing stage %q (have %v)", want, rr.Stages)
			continue
		}
		if st.DurationNS <= 0 {
			t.Errorf("stage %q has non-positive duration %d", want, st.DurationNS)
		}
	}

	// Crawl and search sections must reflect real work.
	if rr.Crawl == nil || rr.Crawl.Entries == 0 || rr.Crawl.Downloaded == 0 {
		t.Errorf("crawl section = %+v", rr.Crawl)
	}
	if rr.Search == nil || rr.Search.Searches == 0 || rr.Search.DistanceEvals == 0 {
		t.Errorf("search section = %+v", rr.Search)
	}

	// The metrics snapshot must include the instrumented families.
	families := map[string]bool{}
	for _, p := range rr.Metrics {
		families[p.Name] = true
	}
	for _, want := range []string{
		"patchdb_stage_items_total",
		"patchdb_stage_duration_nanoseconds_total",
		"crawl_downloads_total",
		"nearestlink_searches_total",
		"nearestlink_distance_evals_total",
		"retry_attempts_total",
	} {
		if !families[want] {
			t.Errorf("metrics snapshot missing family %q", want)
		}
	}

	// Spans: a build root span with the crawl span parented under it.
	var buildSpan, crawlSpan *telemetry.SpanRecord
	for i := range rr.Spans {
		switch rr.Spans[i].Name {
		case "build":
			buildSpan = &rr.Spans[i]
		case "nvd.crawl":
			crawlSpan = &rr.Spans[i]
		}
	}
	if buildSpan == nil || crawlSpan == nil {
		t.Fatalf("spans missing build/nvd.crawl: %+v", rr.Spans)
	}
	if crawlSpan.Parent != buildSpan.ID {
		t.Errorf("nvd.crawl parent = %d, want build span id %d", crawlSpan.Parent, buildSpan.ID)
	}
}

// timingMetric reports whether a metric family carries wall-clock-derived
// values (durations, latency histograms) or other timing-dependent counts
// (circuit-breaker activity); those are legitimately worker-count dependent
// and excluded from the determinism contract.
func timingMetric(name string) bool {
	return strings.Contains(name, "duration") ||
		strings.Contains(name, "seconds") ||
		strings.Contains(name, "breaker")
}

// TestBuildTelemetryDeterministicAcrossWorkers is the acceptance check: on a
// fault-free build, every counter-valued metric and every crawl/search count
// in the run report is identical between a serial and a parallel build.
func TestBuildTelemetryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *RunReport {
		t.Helper()
		cfg := telemetryTestConfig()
		cfg.Workers = workers
		cfg.Telemetry = NewTelemetryHub()
		_, report, err := Build(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return report.Run
	}
	counters := func(rr *RunReport) map[string]float64 {
		out := map[string]float64{}
		for _, p := range rr.Metrics {
			if p.Kind != telemetry.KindCounter || timingMetric(p.Name) {
				continue
			}
			id := p.Name
			for _, l := range p.Labels {
				id += "{" + l.Key + "=" + l.Value + "}"
			}
			out[id] = p.Value
		}
		return out
	}

	rr1, rr8 := run(1), run(8)

	c1, c8 := counters(rr1), counters(rr8)
	if len(c1) == 0 {
		t.Fatal("no counter metrics collected")
	}
	for id, v := range c1 {
		if c8[id] != v {
			t.Errorf("counter %s: workers=1 %v vs workers=8 %v", id, v, c8[id])
		}
	}
	for id := range c8 {
		if _, ok := c1[id]; !ok {
			t.Errorf("counter %s only present at workers=8", id)
		}
	}

	// Crawl section: all counts must match (timing-dependent breaker trips
	// cannot occur on a fault-free build, so compare the whole struct).
	if *rr1.Crawl != *rr8.Crawl {
		t.Errorf("crawl sections differ:\n  workers=1: %+v\n  workers=8: %+v", *rr1.Crawl, *rr8.Crawl)
	}

	// Search section: every engine counter must match; only the wall-clock
	// duration may differ.
	s1, s8 := *rr1.Search, *rr8.Search
	s1.DurationNS, s8.DurationNS = 0, 0
	if s1 != s8 {
		t.Errorf("search sections differ:\n  workers=1: %+v\n  workers=8: %+v", s1, s8)
	}

	// Stage item counts (not durations) must also agree.
	items := func(rr *RunReport) map[string]int {
		out := map[string]int{}
		for _, st := range rr.Stages {
			out[st.Stage] = st.Items
		}
		return out
	}
	i1, i8 := items(rr1), items(rr8)
	for stage, n := range i1 {
		if i8[stage] != n {
			t.Errorf("stage %q items: workers=1 %d vs workers=8 %d", stage, n, i8[stage])
		}
	}
}

// TestBuildPrivateHubIsolation checks that a Build given no hub creates its
// own: two concurrent-ish builds must not leak counters into each other or
// into the process-wide default hub.
func TestBuildPrivateHubIsolation(t *testing.T) {
	before := len(DefaultTelemetryHub().Registry.Snapshot())

	cfg := telemetryTestConfig()
	_, report, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Run == nil || len(report.Run.Metrics) == 0 {
		t.Fatal("build without explicit hub produced no run report metrics")
	}
	after := len(DefaultTelemetryHub().Registry.Snapshot())
	if after != before {
		t.Errorf("build leaked %d metric families into the default hub", after-before)
	}

	// Two sequential builds with private hubs must report identical counter
	// state (no cross-build accumulation).
	_, report2, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range report.Run.Metrics {
		if timingMetric(p.Name) || p.Kind != telemetry.KindCounter {
			continue
		}
		q := report2.Run.Metrics[i]
		if p.Name != q.Name || p.Value != q.Value {
			t.Errorf("metric %d differs across isolated builds: %s=%v vs %s=%v",
				i, p.Name, p.Value, q.Name, q.Value)
		}
	}
}

// TestServeTelemetryDuringBuild scrapes /metrics after a build published
// into a served hub — the README quickstart flow.
func TestServeTelemetryDuringBuild(t *testing.T) {
	hub := NewTelemetryHub()
	srv, err := ServeTelemetry("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := telemetryTestConfig()
	cfg.Telemetry = hub
	if _, _, err := Build(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := telemetry.WriteProm(&sb, hub.Registry); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE patchdb_stage_items_total counter",
		`patchdb_stage_items_total{stage="crawl"}`,
		"# TYPE nearestlink_search_seconds histogram",
		"nearestlink_search_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}
