package patchdb_test

import (
	"context"
	"fmt"
	"strings"

	"patchdb"
)

// ExampleParsePatch parses a git patch and inspects its structure.
func ExampleParsePatch() {
	text := "commit abc1234\n" +
		"diff --git a/f.c b/f.c\n--- a/f.c\n+++ b/f.c\n" +
		"@@ -1,3 +1,4 @@ int f(int len)\n" +
		" int f(int len) {\n" +
		"+\tif (len < 0) return -1;\n" +
		" \tuse(len);\n" +
		" }\n"
	p, err := patchdb.ParsePatch(text)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(p.Commit, len(p.Files), "file(s)", len(p.HunkList()), "hunk(s)")
	fmt.Println("added:", strings.TrimSpace(p.AddedLines()[0]))
	// Output:
	// abc1234 1 file(s) 1 hunk(s)
	// added: if (len < 0) return -1;
}

// ExampleAbstractTokens shows the token abstraction used by the Levenshtein
// features and the RNN.
func ExampleAbstractTokens() {
	fmt.Println(strings.Join(patchdb.AbstractTokens(`if (len > 64) copy(dst, "x");`), " "))
	// Output:
	// if ( VAR > NUM ) FUNC ( VAR , STR ) ;
}

// ExampleNearestLink runs Algorithm 1 on a toy feature space.
func ExampleNearestLink() {
	security := [][]float64{{0, 0}, {10, 10}}
	wild := [][]float64{{9, 10}, {90, 90}, {1, 0}}
	links, err := patchdb.NearestLink(context.Background(), security, wild, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, l := range links {
		fmt.Printf("security %d -> wild %d\n", l.Security, l.Wild)
	}
	// Output:
	// security 0 -> wild 2
	// security 1 -> wild 0
}

// ExampleApplyVariant applies one Fig. 5 control-flow template to an if
// statement.
func ExampleApplyVariant() {
	src := "int f(int a)\n{\n\tif (a > 0)\n\t\treturn 1;\n\treturn 0;\n}\n"
	file, err := patchdb.ParseC(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := patchdb.ApplyVariant(src, file.IfStmts()[0], patchdb.VariantZeroOr)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(out)
	// Output:
	// int f(int a)
	// {
	// 	const int _SYS_ZERO = 0;
	// 	if (_SYS_ZERO || (a > 0))
	// 		return 1;
	// 	return 0;
	// }
}

// ExampleCategorizePatch assigns a Table V pattern class.
func ExampleCategorizePatch() {
	text := "commit fee1dead\n" +
		"diff --git a/f.c b/f.c\n--- a/f.c\n+++ b/f.c\n" +
		"@@ -1,2 +1,4 @@\n" +
		" \tstruct s *p = get(id);\n" +
		"+\tif (p == NULL)\n" +
		"+\t\treturn -1;\n" +
		" \tp->refs++;\n"
	p, err := patchdb.ParsePatch(text)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(patchdb.CategorizePatch(p))
	// Output:
	// add or change null checks
}
