// Command patchdb-stats reports composition statistics for a PatchDB
// dataset JSON file produced by patchdb-build: component sizes, the Table V
// pattern distribution, and the agreement between stored labels and the
// rule-based categorizer.
//
// Usage:
//
//	patchdb-stats -in patchdb.json
//	patchdb-stats -in patchdb.json -patterns -telemetry-out report.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"patchdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-stats:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "patchdb.json", "dataset JSON path")
	patterns := flag.Bool("patterns", false, "also mine and print fix patterns (Table VII style)")
	minSupport := flag.Int("min-support", 5, "minimum support for mined fix patterns")
	telOut := flag.String("telemetry-out", "", "write a RunReport JSON with stage timings to this path (empty = disabled)")
	flag.Parse()

	hub := patchdb.NewTelemetryHub()
	metrics := patchdb.NewStageMetrics(hub)

	stop := metrics.Timer("load")
	ds, err := patchdb.LoadDatasetFile(*in)
	if err != nil {
		return err
	}
	stats := ds.Stats()
	stop(stats.NVD + stats.Wild + stats.NonSecurity + stats.Synthetic)
	fmt.Printf("dataset %s\n", *in)
	fmt.Printf("  NVD-based security patches:  %d\n", stats.NVD)
	fmt.Printf("  wild-based security patches: %d\n", stats.Wild)
	fmt.Printf("  cleaned non-security:        %d\n", stats.NonSecurity)
	fmt.Printf("  synthetic:                   %d\n\n", stats.Synthetic)

	sec := ds.SecurityPatches()
	fmt.Println("security patch distribution (stored labels):")
	dist := ds.Distribution()
	for p := patchdb.Pattern(1); int(p) <= patchdb.NumPatterns; p++ {
		n := dist[p]
		pct := 0.0
		if len(sec) > 0 {
			pct = 100 * float64(n) / float64(len(sec))
		}
		fmt.Printf("  %2d %-40s %5.1f%%  %s\n", int(p), p.String(), pct,
			strings.Repeat("#", int(pct/2)))
	}

	// Cross-check with the rule-based categorizer.
	stop = metrics.Timer("categorize")
	agree, parsed := 0, 0
	for _, r := range sec {
		p, err := r.Patch()
		if err != nil {
			continue
		}
		parsed++
		if patchdb.CategorizePatch(p) == r.Pattern {
			agree++
		}
	}
	stop(parsed)
	if parsed > 0 {
		fmt.Printf("\nrule-based categorizer agreement with labels: %.1f%% (%d/%d)\n",
			100*float64(agree)/float64(parsed), agree, parsed)
	}

	if *patterns {
		stop = metrics.Timer("mine-patterns")
		templates, err := patchdb.MineDatasetFixPatterns(ds,
			patchdb.FixPatternMiner{MinSupport: *minSupport, TopK: 3})
		if err != nil {
			return fmt.Errorf("mine fix patterns: %w", err)
		}
		stop(len(templates))
		fmt.Println()
		fmt.Println(patchdb.RenderFixPatterns(templates))
	}

	if *telOut != "" {
		rr := patchdb.NewRunReport("patchdb-stats", hub)
		for _, st := range metrics.Snapshot() {
			rr.Stages = append(rr.Stages, patchdb.RunReportStage{
				Stage:      string(st.Stage),
				DurationNS: st.Duration.Nanoseconds(),
				Items:      st.Items,
			})
		}
		if err := rr.WriteFile(*telOut); err != nil {
			return err
		}
		fmt.Println()
		fmt.Println("stage timings:")
		fmt.Println(patchdb.FormatStages(metrics.Snapshot()))
		fmt.Println("wrote run report", *telOut)
	}
	return nil
}
