// Command patchdb-serve exposes a built PatchDB dataset over a versioned
// HTTP/JSON query API, backed by an immutable sharded in-memory store with
// atomic snapshot swap: rebuilding the dataset and reloading it (SIGHUP or
// POST /reload) never blocks readers.
//
// Usage:
//
//	patchdb-serve -in patchdb.json -addr 127.0.0.1:8080
//	patchdb-serve -in patchdb.json -shards 16      # wider point-lookup sharding
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/patch/<commit-hash>
//	curl 'localhost:8080/v1/patches?source=wild&security=true&limit=5'
//	curl -X POST localhost:8080/reload             # after patchdb-build rewrites -in
//	kill -HUP $(pidof patchdb-serve)               # same, signal-driven
//
// The process also serves the telemetry hub's Prometheus-text /metrics and
// the /debug/pprof profiling endpoints on the same address, and shuts down
// gracefully on interrupt (in-flight requests drain before exit).
//
// The serving path is hardened against bad inputs and bad luck: a reload
// that fails (missing or corrupt artifact) keeps the previous snapshot
// serving and surfaces the failure on /healthz as last_reload_error and in
// the patchdb_store_reload_failures_total counter; every API handler runs
// under panic recovery (500 + patchdb_store_http_panics_total, the process
// survives) and a per-request deadline (503 once exceeded).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"patchdb"
	"patchdb/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in     = flag.String("in", "patchdb.json", "dataset JSON path (reread on reload)")
		addr   = flag.String("addr", "127.0.0.1:8080", "listen address")
		shards = flag.Int("shards", store.DefaultShards, "store shard count (e.g. 1, 4, 16)")
	)
	flag.Parse()
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", *shards)
	}

	hub := patchdb.NewTelemetryHub()
	st := store.New(*shards, hub)
	sn, err := st.LoadFile(*in)
	if err != nil {
		return err
	}
	stats := sn.Stats()
	fmt.Printf("loaded %s: %d records (nvd=%d wild=%d non-security=%d synthetic=%d), %d shards, version %d\n",
		*in, sn.Records(), stats.NVD, stats.Wild, stats.NonSecurity, stats.Synthetic, *shards, sn.Version)
	if d := sn.Duplicates(); d > 0 {
		fmt.Printf("warning: %d duplicate record ids dropped (first occurrence wins)\n", d)
	}

	reload := func() (*store.Snapshot, error) { return st.LoadFile(*in) }

	api := store.NewHandler(st, hub, reload)
	mux := http.NewServeMux()
	mux.Handle("/v1/", api)
	mux.Handle("/reload", api)
	mux.Handle("/healthz", api)
	mux.Handle("/debug/slo", api)
	mux.Handle("/debug/logs", api)
	mux.Handle("/debug/status", api)
	mux.Handle("/metrics", hub.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv, err := store.Serve(*addr, mux)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s/v1/ (+/metrics, /debug/status, /debug/slo, /debug/logs, /debug/pprof/) — SIGHUP or POST /reload to swap snapshots\n", srv.URL)

	// Interrupt triggers graceful shutdown; SIGHUP swaps in a fresh
	// snapshot without interrupting readers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				sn, err := st.LoadFile(*in)
				if err != nil {
					fmt.Fprintln(os.Stderr, "patchdb-serve: reload:", err)
					continue
				}
				fmt.Printf("reloaded %s: %d records, version %d\n", *in, sn.Records(), sn.Version)
			}
		}
	}()

	<-ctx.Done()
	fmt.Println("shutting down")
	return srv.Close()
}
