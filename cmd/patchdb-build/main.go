// Command patchdb-build runs the end-to-end PatchDB construction pipeline —
// NVD crawl, nearest-link augmentation with simulated verification, and
// source-level oversampling — and writes the assembled dataset as JSON.
//
// Usage:
//
//	patchdb-build -out patchdb.json -nvd 400 -pools 8000,16000,16000 -synthetic 4
//	patchdb-build -workers 16 -progress          # parallel run with a live stage view
//	patchdb-build -feed-noise=-1 -ratio-threshold=-1  # disable noise and early exit
//	patchdb-build -fault-rate 0.3 -max-retries 3 # chaos run: inject crawl faults
//	patchdb-build -checkpoint-dir ckpt           # journal every stage boundary
//	patchdb-build -checkpoint-dir ckpt -resume   # resume a killed build from its journal
//	patchdb-build -telemetry-out patchdb-run-report.json  # write the RunReport artifact
//	patchdb-build -serve-metrics 127.0.0.1:9090  # scrape /metrics + pprof during the build
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"

	"patchdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-build:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "patchdb.json", "output dataset path")
		seed      = flag.Int64("seed", 1, "random seed")
		nvdSize   = flag.Int("nvd", 400, "NVD-indexed security patches")
		nonSec    = flag.Int("nonsec", 800, "initial cleaned non-security patches")
		pools     = flag.String("pools", "8000,16000,16000", "comma-separated wild pool sizes")
		rounds    = flag.String("rounds", "3,1,1", "comma-separated rounds per pool")
		synthetic = flag.Int("synthetic", 4, "synthetic variants per natural patch (0 disables)")
		workers   = flag.Int("workers", 0, "worker-pool size for crawl/extraction/search (0 = GOMAXPROCS)")
		noise     = flag.Float64("feed-noise", 0, "CVE entries without patch links, as a fraction of -nvd (0 = default 0.1, negative disables)")
		threshold = flag.Float64("ratio-threshold", 0, "augmentation early-exit ratio (0 = default 0.01, negative disables)")
		progress  = flag.Bool("progress", false, "render live per-stage progress on stderr")
		faultRate = flag.Float64("fault-rate", 0, "inject transient crawl faults at this per-request probability (0 = none)")
		retries   = flag.Int("max-retries", 0, "per-download retry budget after the first attempt (0 = default 3, negative disables)")
		failRatio = flag.Float64("max-failure-ratio", 0, "quarantined-download ratio that fails the build (0 = default 0.25, negative = never fail)")
		telOut    = flag.String("telemetry-out", "", "write the end-of-run RunReport JSON to this path (empty = disabled; conventionally "+patchdb.DefaultRunReportPath+")")
		traceOut  = flag.String("trace-out", "", "write the build's span tree as Chrome trace-event JSON to this path, viewable in chrome://tracing or Perfetto (empty = disabled)")
		telServe  = flag.String("serve-metrics", "", "serve /metrics and /debug/pprof on this address for the duration of the build (empty = disabled)")
		ckptDir   = flag.String("checkpoint-dir", "", "journal build state at every stage boundary into this directory (empty = disabled)")
		resume    = flag.Bool("resume", false, "resume from the journal in -checkpoint-dir, skipping completed stages (refuses a journal from a different config)")
	)
	flag.Parse()

	poolSizes, err := parseInts(*pools)
	if err != nil {
		return fmt.Errorf("parse -pools: %w", err)
	}
	roundCounts, err := parseInts(*rounds)
	if err != nil {
		return fmt.Errorf("parse -rounds: %w", err)
	}

	cfg := patchdb.BuilderConfig{
		Seed:                 *seed,
		NVDSize:              *nvdSize,
		NonSecuritySize:      *nonSec,
		WildPools:            poolSizes,
		RoundsPerPool:        roundCounts,
		SyntheticPerPatch:    *synthetic,
		FeedNoise:            *noise,
		RatioThreshold:       *threshold,
		Workers:              *workers,
		FaultRate:            *faultRate,
		MaxRetries:           *retries,
		MaxCrawlFailureRatio: *failRatio,
		CheckpointDir:        *ckptDir,
		Resume:               *resume,
	}
	if *progress {
		cfg.Progress = progressRenderer(os.Stderr)
	}
	hub := patchdb.NewTelemetryHub()
	cfg.Telemetry = hub
	cfg.TelemetryOut = *telOut
	if *telServe != "" {
		srv, err := patchdb.ServeTelemetry(*telServe, hub)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving %s/metrics and %s/debug/pprof/\n", srv.URL, srv.URL)
	}

	// Ctrl-C cancels the pipeline cleanly (Build checks the context between
	// rounds, records, and fetches); a second interrupt kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, report, err := patchdb.Build(ctx, cfg)
	if err != nil {
		return err
	}

	if report.ResumedFrom != "" {
		fmt.Printf("resumed from checkpoint stage %q\n", report.ResumedFrom)
	}
	fmt.Printf("crawl: %d entries, %d with patch refs, %d downloaded, %d errors\n",
		report.Crawl.Entries, report.Crawl.WithPatchRefs, report.Crawl.Downloaded, report.Crawl.Errors)
	if report.Crawl.Retries > 0 || report.Crawl.Quarantined > 0 {
		fmt.Printf("crawl resilience: %d retries, %d quarantined, %d breaker trips\n",
			report.Crawl.Retries, report.Crawl.Quarantined, report.Crawl.BreakerTrips)
	}
	for _, q := range report.Crawl.Quarantine {
		fmt.Printf("  quarantined: %s %s after %d attempts: %s\n", q.CVE, q.URL, q.Attempts, q.LastError)
	}
	if report.Degraded {
		fmt.Println("warning: degraded build — dataset is complete except for quarantined patches")
	}
	for _, r := range report.Rounds {
		fmt.Println(r)
	}
	if report.Search.Searches > 0 {
		fmt.Println("nearest-link engine:", report.Search)
	}
	stats := ds.Stats()
	fmt.Printf("dataset: nvd=%d wild=%d non-security=%d synthetic=%d (verifications: %d)\n",
		stats.NVD, stats.Wild, stats.NonSecurity, stats.Synthetic, report.HumanVerifications)
	fmt.Println("stage timings:")
	fmt.Println(patchdb.FormatStages(report.Stages))

	if *telOut != "" {
		fmt.Println("wrote run report", *telOut)
	}
	if *traceOut != "" {
		if err := hub.Tracer.WriteChromeTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Println("wrote chrome trace", *traceOut)
	}

	if err := ds.SaveJSON(*out); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

// progressRenderer returns a Progress callback that repaints one status line
// per stage transition or whole-percent change. It throttles to percent
// granularity because the builder reports per item and the extract stage can
// cover hundreds of thousands of commits.
func progressRenderer(w *os.File) func(patchdb.Stage, int, int) {
	var mu sync.Mutex
	lastPct := map[patchdb.Stage]int{}
	return func(stage patchdb.Stage, done, total int) {
		mu.Lock()
		defer mu.Unlock()
		pct := 100
		if total > 0 {
			pct = 100 * done / total
		}
		if p, ok := lastPct[stage]; ok && p == pct && done != total {
			return
		}
		lastPct[stage] = pct
		fmt.Fprintf(w, "\r%-10s %d/%d (%d%%)   ", stage, done, total, pct)
		if done >= total {
			fmt.Fprintln(w)
		}
	}
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
