// Command patchdb-build runs the end-to-end PatchDB construction pipeline —
// NVD crawl, nearest-link augmentation with simulated verification, and
// source-level oversampling — and writes the assembled dataset as JSON.
//
// Usage:
//
//	patchdb-build -out patchdb.json -nvd 400 -pools 8000,16000,16000 -synthetic 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"patchdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-build:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "patchdb.json", "output dataset path")
		seed      = flag.Int64("seed", 1, "random seed")
		nvdSize   = flag.Int("nvd", 400, "NVD-indexed security patches")
		nonSec    = flag.Int("nonsec", 800, "initial cleaned non-security patches")
		pools     = flag.String("pools", "8000,16000,16000", "comma-separated wild pool sizes")
		rounds    = flag.String("rounds", "3,1,1", "comma-separated rounds per pool")
		synthetic = flag.Int("synthetic", 4, "synthetic variants per natural patch (0 disables)")
	)
	flag.Parse()

	poolSizes, err := parseInts(*pools)
	if err != nil {
		return fmt.Errorf("parse -pools: %w", err)
	}
	roundCounts, err := parseInts(*rounds)
	if err != nil {
		return fmt.Errorf("parse -rounds: %w", err)
	}

	ds, report, err := patchdb.Build(context.Background(), patchdb.BuilderConfig{
		Seed:              *seed,
		NVDSize:           *nvdSize,
		NonSecuritySize:   *nonSec,
		WildPools:         poolSizes,
		RoundsPerPool:     roundCounts,
		SyntheticPerPatch: *synthetic,
	})
	if err != nil {
		return err
	}

	fmt.Printf("crawl: %d entries, %d with patch refs, %d downloaded, %d errors\n",
		report.Crawl.Entries, report.Crawl.WithPatchRefs, report.Crawl.Downloaded, report.Crawl.Errors)
	for _, r := range report.Rounds {
		fmt.Println(r)
	}
	stats := ds.Stats()
	fmt.Printf("dataset: nvd=%d wild=%d non-security=%d synthetic=%d (verifications: %d)\n",
		stats.NVD, stats.Wild, stats.NonSecurity, stats.Synthetic, report.HumanVerifications)

	if err := ds.SaveJSON(*out); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func parseInts(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
