package main

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"patchdb/internal/atomicio"
	"patchdb/internal/experiments"
	"patchdb/internal/experiments/servebench"
)

// serveJSON is the serving-layer perf artifact the SERVE experiment emits:
// p50/p99 latency and QPS per shard count, cold vs. warm.
const serveJSON = "BENCH_serve.json"

type serveResult struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	servebench.ServeBench
	path string
}

func (r serveResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SERVE: sharded store + query API under load (%d records, %d clients)\n",
		r.Records, r.Workers)
	sb.WriteString("  shards  phase  requests       p50       p99       QPS\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %6d  %5s  %8d  %8s  %8s  %8.0f\n",
			row.Shards, row.Phase, row.Requests,
			time.Duration(row.P50NS).Round(time.Microsecond),
			time.Duration(row.P99NS).Round(time.Microsecond),
			row.QPS)
	}
	fmt.Fprintf(&sb, "  wrote %s", r.path)
	return sb.String()
}

// runServe drives the SERVE load-generation harness and writes the
// measurements to BENCH_serve.json.
func runServe(scale experiments.Scale, workers int) (fmt.Stringer, error) {
	bench, err := servebench.RunServeBench(scale, workers, 0, []int{1, 4, 16})
	if err != nil {
		return nil, err
	}
	res := serveResult{Experiment: "serve", Scale: scale.Name, ServeBench: *bench, path: serveJSON}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(serveJSON, append(data, '\n')); err != nil {
		return nil, fmt.Errorf("write %s: %w", serveJSON, err)
	}
	return res, nil
}
