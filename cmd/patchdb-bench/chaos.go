package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"patchdb/internal/corpus"
	"patchdb/internal/faults"
	"patchdb/internal/nvd"
	"patchdb/internal/retry"
)

// chaosRates are the per-request fault probabilities the CHAOS experiment
// sweeps, from a healthy upstream to one failing every other request.
var chaosRates = []float64{0, 0.1, 0.3, 0.5}

// chaosRow is one fault-rate measurement.
type chaosRow struct {
	rate      float64
	jobs      int
	recovered int
	retries   int
	trips     int
	injected  faults.Stats
	elapsed   time.Duration
}

type chaosResult struct {
	rows []chaosRow
}

func (c chaosResult) String() string {
	var sb strings.Builder
	sb.WriteString("CHAOS: crawl resilience under injected faults\n")
	sb.WriteString("  rate   recovered        retries  trips  injected  wall-clock\n")
	for _, r := range c.rows {
		ratio := 100.0
		if r.jobs > 0 {
			ratio = 100 * float64(r.recovered) / float64(r.jobs)
		}
		fmt.Fprintf(&sb, "  %4.0f%%  %4d/%4d %5.1f%%  %7d  %5d  %8d  %s\n",
			100*r.rate, r.recovered, r.jobs, ratio, r.retries, r.trips,
			r.injected.Total(), r.elapsed.Round(time.Millisecond))
	}
	return strings.TrimRight(sb.String(), "\n")
}

// runChaos measures the crawl layer alone — recovered-patch ratio and
// wall-clock — against the same corpus under increasing fault rates. Every
// sweep rebuilds the world from the scale's seed, so rows differ only in
// the injected fault rate.
func runChaos(scale int, seed int64, workers int) (fmt.Stringer, error) {
	res := chaosResult{}
	for _, rate := range chaosRates {
		gen := corpus.NewGenerator(corpus.Config{Seed: seed})
		commits := gen.GenerateNVD(scale)
		svc := nvd.NewService(gen.Store())
		inj := faults.New(faults.Config{
			Seed:       seed,
			Routes:     []faults.Route{{Rate: rate}},
			RetryAfter: 5 * time.Millisecond,
			HangFor:    10 * time.Millisecond,
		})
		if rate > 0 {
			svc.Wrap = inj.Wrap
		}
		base, err := svc.Start()
		if err != nil {
			return nil, err
		}
		for _, lc := range commits {
			svc.AddEntry(nvd.Entry{ID: lc.CVE, References: []nvd.Reference{{
				URL:  nvd.GitHubCommitURL(base, lc.Commit.Repo, lc.Commit.Hash),
				Tags: []string{"Patch"},
			}}})
		}
		crawler := &nvd.Crawler{
			BaseURL:        base,
			Concurrency:    workers,
			Seed:           seed,
			RetryBaseDelay: 2 * time.Millisecond,
			RetryMaxDelay:  50 * time.Millisecond,
			Breaker:        retry.NewBreaker(retry.BreakerConfig{Cooldown: 10 * time.Millisecond}),
		}
		start := time.Now()
		_, stats, err := crawler.Crawl(context.Background())
		elapsed := time.Since(start)
		closeErr := svc.Close()
		if err != nil {
			return nil, fmt.Errorf("rate %.0f%%: %w", 100*rate, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("rate %.0f%%: close: %w", 100*rate, closeErr)
		}
		res.rows = append(res.rows, chaosRow{
			rate:      rate,
			jobs:      len(commits),
			recovered: stats.Downloaded,
			retries:   stats.Retries,
			trips:     stats.BreakerTrips,
			injected:  inj.Stats(),
			elapsed:   elapsed,
		})
	}
	return res, nil
}
