package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"patchdb/internal/atomicio"
	"patchdb/internal/experiments"

	"patchdb/internal/core/nearestlink"
)

// nearestLinkJSON is the perf-trajectory artifact the NEARESTLINK
// experiment emits, one row per (M, N, workers) sweep point.
const nearestLinkJSON = "BENCH_nearestlink.json"

// referenceVerifyCap bounds the M*N size at which the sweep runs the full
// O(M·N·d) reference implementation — cross-checking every link bit-for-bit
// and timing a directly measured speedup. Above it the reference run would
// dominate the sweep's wall-clock, so those shapes time a deterministic
// seed-row subsample instead (reference_mode: "sampled").
const referenceVerifyCap = 25_000_000

// referenceSampleSeeds is the seed-row subsample a too-large shape times the
// reference on: the reference cost is linear in M (each seed row is one full
// O(N·d) scan plus its share of greedy rescans), so the measurement scales
// to the full M by M/referenceSampleSeeds.
const referenceSampleSeeds = 64

// spotCheckSeeds is how many seeds every shape verifies against the
// reference semantics via nearestlink.VerifySampled: each sampled link gets
// one brute-force reference-order row scan over the columns unused at its
// assignment time, so even shapes too large for a full reference run report
// a real verification verdict instead of verified_identical: false.
const spotCheckSeeds = 64

// nlRow is one sweep measurement.
type nlRow struct {
	M    int `json:"m"`
	N    int `json:"n"`
	Dims int `json:"dims"`
	// Workers is the resolved worker count the engine actually ran with
	// (never 0: a zero request resolves to GOMAXPROCS).
	Workers        int     `json:"workers"`
	NsPerOp        int64   `json:"ns_per_op"`
	DistanceEvals  int64   `json:"distance_evals"`
	NormPruned     int64   `json:"norm_pruned"`
	QuantPruned    int64   `json:"quant_pruned"`
	EarlyExited    int64   `json:"early_exited"`
	PrunedFraction float64 `json:"pruned_fraction"`
	Rescans        int     `json:"rescans"`
	SecondBestHits int     `json:"second_best_hits"`
	HeapPops       int     `json:"heap_pops"`
	// ReferenceNsPerOp and Speedup are populated for every row.
	// ReferenceMode records how the reference was timed: "full" is a
	// complete reference run over the same instance, "sampled" scales a
	// referenceSampleSeeds-row subsample measurement to the full M.
	ReferenceNsPerOp     int64   `json:"reference_ns_per_op"`
	Speedup              float64 `json:"speedup_vs_reference"`
	ReferenceMode        string  `json:"reference_mode"`
	ReferenceSampleSeeds int     `json:"reference_sample_seeds,omitempty"`
	Verified             bool    `json:"verified_identical"`
	// VerifyMode records how the row was verified: "full+spot" when the
	// whole link set was compared against a reference run, "spot" when only
	// the sampled per-seed reference scans ran.
	VerifyMode string `json:"verify_mode"`
	// SpotCheckedSeeds is how many links the sampled verification scanned.
	SpotCheckedSeeds int `json:"spot_checked_seeds"`
}

type nlResult struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Rows       []nlRow `json:"rows"`
	path       string
	smoke      bool
}

func (r nlResult) String() string {
	var sb strings.Builder
	sb.WriteString("NEARESTLINK: flat-layout pruned search engine sweep\n")
	sb.WriteString("      M        N   wrk      time      evals  pruned  rescans  2nd-best   speedup\n")
	for _, row := range r.Rows {
		speed := fmt.Sprintf("%6.1fx", row.Speedup)
		if row.ReferenceMode == "sampled" {
			speed += "~" // estimated against a sampled reference timing
		}
		verified := ""
		switch {
		case row.Verified && row.VerifyMode == "full+spot":
			verified = " =ref"
		case row.Verified:
			verified = fmt.Sprintf(" =ref(%d sampled)", row.SpotCheckedSeeds)
		}
		fmt.Fprintf(&sb, "  %5d  %7d  %4d  %8s  %9d  %5.1f%%  %7d  %8d  %s%s\n",
			row.M, row.N, row.Workers, time.Duration(row.NsPerOp).Round(time.Millisecond),
			row.DistanceEvals, 100*row.PrunedFraction, row.Rescans,
			row.SecondBestHits, speed, verified)
	}
	if r.smoke {
		sb.WriteString("  smoke gate: every row fully verified against the reference; artifact not written")
	} else {
		fmt.Fprintf(&sb, "  wrote %s", r.path)
	}
	return sb.String()
}

// nlShapes picks the sweep sizes for a scale: the default/paper scales run
// the full trajectory up to 2k seeds × 200k wild commits.
func nlShapes(scale experiments.Scale) [][2]int {
	if strings.HasPrefix(scale.Name, "small") {
		return [][2]int{{100, 10_000}, {250, 25_000}}
	}
	return [][2]int{{500, 50_000}, {1000, 100_000}, {2000, 200_000}}
}

// nlWorkerSweep picks the worker counts per shape: an explicit -workers flag
// runs just that count; the default sweeps the scaling dimension.
func nlWorkerSweep(flagWorkers int) []int {
	if flagWorkers > 0 {
		return []int{flagWorkers}
	}
	return []int{1, 4, 8}
}

// resolveWorkers mirrors the engine's Options resolution so the artifact
// records the worker count actually used, never a raw 0 request.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// synthFeatureRows generates feature-like vectors mimicking the 60-dim
// syntactic features the real pipeline extracts: sparse non-negative counts,
// per-dimension scale variation, and a long-tailed per-row commit-size
// factor (big commits have uniformly large counts) — the spread the
// engine's norm bound prunes against in practice.
func synthFeatureRows(rng *rand.Rand, n, d int) [][]float64 {
	scale := make([]float64, d)
	for j := range scale {
		scale[j] = 1 + 9*rng.Float64()
	}
	out := make([][]float64, n)
	for i := range out {
		size := math.Exp(1.2 * rng.NormFloat64())
		row := make([]float64, d)
		for j := range row {
			if rng.Float64() < 0.5 { // sparse: most features zero
				continue
			}
			row[j] = math.Floor(rng.ExpFloat64() * scale[j] * size)
		}
		out[i] = row
	}
	return out
}

// nlReference times (and where affordable fully runs) the reference search
// for one shape. For shapes under referenceVerifyCap it returns the timed
// full-instance link set; larger shapes time a deterministic seed-row
// subsample and scale the measurement linearly to the full M, returning nil
// links. The subsample reuses the instance's own rows, so the timing sees
// the same wild pool and dimensionality the engine did.
func nlReference(sec, wild [][]float64, m, n int) (links []nearestlink.Link, refNs int64, mode string, sampleSeeds int, err error) {
	if m*n <= referenceVerifyCap {
		start := time.Now()
		links, err = nearestlink.ReferenceSearch(sec, wild, nil)
		if err != nil {
			return nil, 0, "", 0, err
		}
		return links, time.Since(start).Nanoseconds(), "full", 0, nil
	}
	sub := referenceSampleSeeds
	if sub > m {
		sub = m
	}
	start := time.Now()
	if _, err = nearestlink.ReferenceSearch(sec[:sub], wild, nil); err != nil {
		return nil, 0, "", 0, err
	}
	est := time.Since(start).Nanoseconds() / int64(sub) * int64(m)
	return nil, est, "sampled", sub, nil
}

// runNearestLink sweeps the engine over growing (M, N) instances and worker
// counts, verifies bit-identical links against the reference where
// affordable (and spot-checks everywhere), and writes the measurements to
// BENCH_nearestlink.json. In smoke mode it instead runs one tiny shape with
// every row fully reference-verified and skips the artifact write — the CI
// gate form of the sweep.
func runNearestLink(scale experiments.Scale, flagWorkers int, smoke bool) (fmt.Stringer, error) {
	const dims = 60
	res := nlResult{Experiment: "nearestlink", Scale: scale.Name, path: nearestLinkJSON, smoke: smoke}
	shapes := nlShapes(scale)
	if smoke {
		res.Scale = "smoke"
		shapes = [][2]int{{50, 2000}}
	}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		rng := rand.New(rand.NewSource(scale.Seed + int64(m)*31 + int64(n)))
		sec := synthFeatureRows(rng, m, dims)
		wild := synthFeatureRows(rng, n, dims)

		// The reference cost does not depend on the engine's worker sweep, so
		// each shape runs (or samples) the reference once and every worker
		// row reports its speedup against the same measurement.
		want, refNs, refMode, refSeeds, err := nlReference(sec, wild, m, n)
		if err != nil {
			return nil, fmt.Errorf("%dx%d reference: %w", m, n, err)
		}

		for _, workers := range nlWorkerSweep(flagWorkers) {
			var st nearestlink.Stats
			start := time.Now()
			links, err := nearestlink.Search(context.Background(), sec, wild,
				&nearestlink.Options{Workers: workers, Stats: &st})
			if err != nil {
				return nil, fmt.Errorf("%dx%d w=%d: %w", m, n, workers, err)
			}
			row := nlRow{
				M: m, N: n, Dims: dims,
				Workers:              resolveWorkers(workers),
				NsPerOp:              time.Since(start).Nanoseconds(),
				DistanceEvals:        st.DistanceEvals,
				NormPruned:           st.NormPruned,
				QuantPruned:          st.QuantPruned,
				EarlyExited:          st.EarlyExited,
				PrunedFraction:       st.PrunedFraction,
				Rescans:              st.Rescans,
				SecondBestHits:       st.SecondBestHits,
				HeapPops:             st.HeapPops,
				ReferenceNsPerOp:     refNs,
				ReferenceMode:        refMode,
				ReferenceSampleSeeds: refSeeds,
			}
			if row.NsPerOp > 0 {
				row.Speedup = float64(refNs) / float64(row.NsPerOp)
			}
			// Every row runs the sampled reference spot-check; rows with a
			// full reference run additionally compare the whole link set.
			samples := spotCheckSeeds
			if smoke {
				samples = m // smoke: brute-force every link
			}
			checked, err := nearestlink.VerifySampled(sec, wild, links,
				&nearestlink.Options{Workers: workers}, samples, scale.Seed)
			if err != nil {
				return nil, fmt.Errorf("%dx%d w=%d spot-check: %w", m, n, workers, err)
			}
			row.SpotCheckedSeeds = checked
			row.Verified = true
			row.VerifyMode = "spot"
			if want != nil {
				if len(links) != len(want) {
					return nil, fmt.Errorf("%dx%d w=%d: engine %d links, reference %d",
						m, n, workers, len(links), len(want))
				}
				for k := range want {
					if links[k] != want[k] {
						return nil, fmt.Errorf("%dx%d w=%d: link %d diverges: engine %+v, reference %+v",
							m, n, workers, k, links[k], want[k])
					}
				}
				row.VerifyMode = "full+spot"
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if smoke {
		return res, nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(nearestLinkJSON, append(data, '\n')); err != nil {
		return nil, fmt.Errorf("write %s: %w", nearestLinkJSON, err)
	}
	return res, nil
}
