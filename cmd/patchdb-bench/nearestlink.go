package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"patchdb/internal/atomicio"
	"patchdb/internal/experiments"

	"patchdb/internal/core/nearestlink"
)

// nearestLinkJSON is the perf-trajectory artifact the NEARESTLINK
// experiment emits, one row per (M, N) sweep point.
const nearestLinkJSON = "BENCH_nearestlink.json"

// referenceVerifyCap bounds the M*N size at which the sweep cross-checks
// the engine against the O(M·N·d) reference implementation (and reports a
// measured speedup); above it the reference run would dominate the sweep's
// wall-clock.
const referenceVerifyCap = 25_000_000

// spotCheckSeeds is how many seeds every shape verifies against the
// reference semantics via nearestlink.VerifySampled: each sampled link gets
// one brute-force reference-order row scan over the columns unused at its
// assignment time, so even shapes too large for a full reference run report
// a real verification verdict instead of verified_identical: false.
const spotCheckSeeds = 64

// nlRow is one sweep measurement.
type nlRow struct {
	M              int     `json:"m"`
	N              int     `json:"n"`
	Dims           int     `json:"dims"`
	NsPerOp        int64   `json:"ns_per_op"`
	DistanceEvals  int64   `json:"distance_evals"`
	NormPruned     int64   `json:"norm_pruned"`
	EarlyExited    int64   `json:"early_exited"`
	PrunedFraction float64 `json:"pruned_fraction"`
	Rescans        int     `json:"rescans"`
	SecondBestHits int     `json:"second_best_hits"`
	HeapPops       int     `json:"heap_pops"`
	// ReferenceNsPerOp and Speedup are populated only when the point was
	// small enough to run (and verify against) the reference.
	ReferenceNsPerOp int64   `json:"reference_ns_per_op,omitempty"`
	Speedup          float64 `json:"speedup_vs_reference,omitempty"`
	Verified         bool    `json:"verified_identical"`
	// VerifyMode records how the row was verified: "full+spot" when the
	// whole link set was compared against a reference run, "spot" when only
	// the sampled per-seed reference scans ran.
	VerifyMode string `json:"verify_mode"`
	// SpotCheckedSeeds is how many links the sampled verification scanned.
	SpotCheckedSeeds int `json:"spot_checked_seeds"`
}

type nlResult struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	Workers    int     `json:"workers"`
	Rows       []nlRow `json:"rows"`
	path       string
}

func (r nlResult) String() string {
	var sb strings.Builder
	sb.WriteString("NEARESTLINK: flat-layout pruned search engine sweep\n")
	sb.WriteString("      M        N      time      evals  pruned  rescans  2nd-best   speedup\n")
	for _, row := range r.Rows {
		speed := "      -"
		if row.Speedup > 0 {
			speed = fmt.Sprintf("%6.1fx", row.Speedup)
		}
		verified := ""
		switch {
		case row.Verified && row.VerifyMode == "full+spot":
			verified = " =ref"
		case row.Verified:
			verified = fmt.Sprintf(" =ref(%d sampled)", row.SpotCheckedSeeds)
		}
		fmt.Fprintf(&sb, "  %5d  %7d  %8s  %9d  %5.1f%%  %7d  %8d  %s%s\n",
			row.M, row.N, time.Duration(row.NsPerOp).Round(time.Millisecond),
			row.DistanceEvals, 100*row.PrunedFraction, row.Rescans,
			row.SecondBestHits, speed, verified)
	}
	fmt.Fprintf(&sb, "  wrote %s", r.path)
	return sb.String()
}

// nlShapes picks the sweep sizes for a scale: the default/paper scales run
// the full trajectory up to 2k seeds × 200k wild commits.
func nlShapes(scale experiments.Scale) [][2]int {
	if strings.HasPrefix(scale.Name, "small") {
		return [][2]int{{100, 10_000}, {250, 25_000}}
	}
	return [][2]int{{500, 50_000}, {1000, 100_000}, {2000, 200_000}}
}

// synthFeatureRows generates feature-like vectors mimicking the 60-dim
// syntactic features the real pipeline extracts: sparse non-negative counts,
// per-dimension scale variation, and a long-tailed per-row commit-size
// factor (big commits have uniformly large counts) — the spread the
// engine's norm bound prunes against in practice.
func synthFeatureRows(rng *rand.Rand, n, d int) [][]float64 {
	scale := make([]float64, d)
	for j := range scale {
		scale[j] = 1 + 9*rng.Float64()
	}
	out := make([][]float64, n)
	for i := range out {
		size := math.Exp(1.2 * rng.NormFloat64())
		row := make([]float64, d)
		for j := range row {
			if rng.Float64() < 0.5 { // sparse: most features zero
				continue
			}
			row[j] = math.Floor(rng.ExpFloat64() * scale[j] * size)
		}
		out[i] = row
	}
	return out
}

// runNearestLink sweeps the engine over growing (M, N) instances, verifies
// bit-identical links against the reference where affordable, and writes
// the measurements to BENCH_nearestlink.json.
func runNearestLink(scale experiments.Scale, workers int) (fmt.Stringer, error) {
	const dims = 60
	res := nlResult{Experiment: "nearestlink", Scale: scale.Name, Workers: workers, path: nearestLinkJSON}
	opts := func(st *nearestlink.Stats) *nearestlink.Options {
		return &nearestlink.Options{Workers: workers, Stats: st}
	}
	for _, sh := range nlShapes(scale) {
		m, n := sh[0], sh[1]
		rng := rand.New(rand.NewSource(scale.Seed + int64(m)*31 + int64(n)))
		sec := synthFeatureRows(rng, m, dims)
		wild := synthFeatureRows(rng, n, dims)

		var st nearestlink.Stats
		start := time.Now()
		links, err := nearestlink.Search(context.Background(), sec, wild, opts(&st))
		if err != nil {
			return nil, fmt.Errorf("%dx%d: %w", m, n, err)
		}
		row := nlRow{
			M: m, N: n, Dims: dims,
			NsPerOp:        time.Since(start).Nanoseconds(),
			DistanceEvals:  st.DistanceEvals,
			NormPruned:     st.NormPruned,
			EarlyExited:    st.EarlyExited,
			PrunedFraction: st.PrunedFraction,
			Rescans:        st.Rescans,
			SecondBestHits: st.SecondBestHits,
			HeapPops:       st.HeapPops,
		}
		// Every shape runs the sampled reference spot-check; small shapes
		// additionally run (and time) the full reference search.
		checked, err := nearestlink.VerifySampled(sec, wild, links,
			&nearestlink.Options{Workers: workers}, spotCheckSeeds, scale.Seed)
		if err != nil {
			return nil, fmt.Errorf("%dx%d spot-check: %w", m, n, err)
		}
		row.SpotCheckedSeeds = checked
		row.Verified = true
		row.VerifyMode = "spot"
		if m*n <= referenceVerifyCap {
			start = time.Now()
			want, err := nearestlink.ReferenceSearch(sec, wild, &nearestlink.Options{Workers: workers})
			if err != nil {
				return nil, fmt.Errorf("%dx%d reference: %w", m, n, err)
			}
			row.ReferenceNsPerOp = time.Since(start).Nanoseconds()
			if row.NsPerOp > 0 {
				row.Speedup = float64(row.ReferenceNsPerOp) / float64(row.NsPerOp)
			}
			if len(links) != len(want) {
				return nil, fmt.Errorf("%dx%d: engine %d links, reference %d", m, n, len(links), len(want))
			}
			for k := range want {
				if links[k] != want[k] {
					return nil, fmt.Errorf("%dx%d: link %d diverges: engine %+v, reference %+v",
						m, n, k, links[k], want[k])
				}
			}
			row.VerifyMode = "full+spot"
		}
		res.Rows = append(res.Rows, row)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicio.WriteFile(nearestLinkJSON, append(data, '\n')); err != nil {
		return nil, fmt.Errorf("write %s: %w", nearestLinkJSON, err)
	}
	return res, nil
}
