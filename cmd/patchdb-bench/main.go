// Command patchdb-bench reproduces every data-bearing table and figure of
// the PatchDB paper and prints them in the paper's layout.
//
// Usage:
//
//	patchdb-bench                 # all experiments at the default scale
//	patchdb-bench -scale small    # fast run
//	patchdb-bench -scale paper    # the paper's dataset sizes (slow)
//	patchdb-bench -only II,III    # a subset of experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"patchdb/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "default", "experiment scale: small, default, or paper")
		only      = flag.String("only", "", "comma-separated experiment ids (II,III,IV,V,VI,VII,F6); empty = all")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale
	case "default":
		scale = experiments.DefaultScale
	case "paper":
		scale = experiments.PaperScale
	default:
		return fmt.Errorf("unknown scale %q (want small, default, or paper)", *scaleName)
	}
	scale.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("PatchDB experiment harness — scale %s (seed %d)\n\n", scale.Name, scale.Seed)
	start := time.Now()
	lab := experiments.NewLab(scale)
	fmt.Printf("corpus: %d NVD + %d non-security + %d/%d/%d wild commits (%.1fs)\n\n",
		len(lab.NVD), len(lab.NonSec), len(lab.SetI), len(lab.SetII), len(lab.SetIII),
		time.Since(start).Seconds())

	type experiment struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	all := []experiment{
		{"II", func() (fmt.Stringer, error) { return lab.RunTableII() }},
		{"III", func() (fmt.Stringer, error) { return lab.RunTableIII() }},
		{"IV", func() (fmt.Stringer, error) { return lab.RunTableIV() }},
		{"V", func() (fmt.Stringer, error) { return lab.RunTableV() }},
		{"F6", func() (fmt.Stringer, error) { return lab.RunFigure6() }},
		{"VI", func() (fmt.Stringer, error) { return lab.RunTableVI() }},
		{"VII", func() (fmt.Stringer, error) { return lab.RunTableVII() }},
	}
	for _, e := range all {
		if !selected(e.id) {
			continue
		}
		t0 := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		fmt.Println(res)
		fmt.Printf("[%s took %.1fs]\n\n", e.id, time.Since(t0).Seconds())
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	return nil
}
