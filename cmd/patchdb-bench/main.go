// Command patchdb-bench reproduces every data-bearing table and figure of
// the PatchDB paper and prints them in the paper's layout, plus a BUILD
// experiment that times the concurrent end-to-end construction pipeline.
//
// Usage:
//
//	patchdb-bench                 # all experiments at the default scale
//	patchdb-bench -scale small    # fast run
//	patchdb-bench -scale paper    # the paper's dataset sizes (slow)
//	patchdb-bench -only II,III    # a subset of experiments
//	patchdb-bench -only BUILD     # end-to-end pipeline with stage timings
//	patchdb-bench -only CHAOS     # crawl resilience under injected faults
//	patchdb-bench -only NEARESTLINK  # search engine sweep -> BENCH_nearestlink.json
//	patchdb-bench -only NEARESTLINK -smoke  # tiny fully-verified sweep, no artifact (CI gate)
//	patchdb-bench -only SERVE     # query API load generation -> BENCH_serve.json
//	patchdb-bench -only BUILD -serve-metrics 127.0.0.1:9090  # scrape /metrics live
//	patchdb-bench -only BUILD -telemetry-out report.json     # write the RunReport
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"patchdb"
	"patchdb/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patchdb-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "default", "experiment scale: small, default, or paper")
		only      = flag.String("only", "", "comma-separated experiment ids (II,III,IV,V,VI,VII,F6,BUILD,CHAOS,NEARESTLINK,SERVE); empty = all")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "BUILD/CHAOS/NEARESTLINK experiment worker-pool size (0 = GOMAXPROCS; NEARESTLINK sweeps 1/4/8 when 0)")
		smoke     = flag.Bool("smoke", false, "NEARESTLINK only: run a tiny fully-verified shape and skip the artifact write (CI gate)")
		telOut    = flag.String("telemetry-out", "", "write the BUILD experiment's RunReport JSON to this path (empty = disabled)")
		telServe  = flag.String("serve-metrics", "", "serve /metrics and /debug/pprof on this address for the whole bench run (empty = disabled)")
		traceOut  = flag.String("trace-out", "", "write the run's span tree as Chrome trace-event JSON to this path, viewable in chrome://tracing or Perfetto (empty = disabled)")
	)
	flag.Parse()

	hub := patchdb.NewTelemetryHub()
	if *telServe != "" {
		srv, err := patchdb.ServeTelemetry(*telServe, hub)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving %s/metrics and %s/debug/pprof/\n", srv.URL, srv.URL)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale
	case "default":
		scale = experiments.DefaultScale
	case "paper":
		scale = experiments.PaperScale
	default:
		return fmt.Errorf("unknown scale %q (want small, default, or paper)", *scaleName)
	}
	scale.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("PatchDB experiment harness — scale %s (seed %d)\n\n", scale.Name, scale.Seed)
	start := time.Now()
	lab := experiments.NewLab(scale)
	fmt.Printf("corpus: %d NVD + %d non-security + %d/%d/%d wild commits (%.1fs)\n\n",
		len(lab.NVD), len(lab.NonSec), len(lab.SetI), len(lab.SetII), len(lab.SetIII),
		time.Since(start).Seconds())

	type experiment struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	all := []experiment{
		{"II", func() (fmt.Stringer, error) { return lab.RunTableII() }},
		{"III", func() (fmt.Stringer, error) { return lab.RunTableIII() }},
		{"IV", func() (fmt.Stringer, error) { return lab.RunTableIV() }},
		{"V", func() (fmt.Stringer, error) { return lab.RunTableV() }},
		{"F6", func() (fmt.Stringer, error) { return lab.RunFigure6() }},
		{"VI", func() (fmt.Stringer, error) { return lab.RunTableVI() }},
		{"VII", func() (fmt.Stringer, error) { return lab.RunTableVII() }},
		{"BUILD", func() (fmt.Stringer, error) { return runBuild(scale, *workers, hub, *telOut) }},
		{"CHAOS", func() (fmt.Stringer, error) { return runChaos(scale.NVDSeed, scale.Seed, *workers) }},
		{"NEARESTLINK", func() (fmt.Stringer, error) { return runNearestLink(scale, *workers, *smoke) }},
		{"SERVE", func() (fmt.Stringer, error) { return runServe(scale, *workers) }},
	}
	for _, e := range all {
		if !selected(e.id) {
			continue
		}
		t0 := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		fmt.Println(res)
		fmt.Printf("[%s took %.1fs]\n\n", e.id, time.Since(t0).Seconds())
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	if *traceOut != "" {
		if err := hub.Tracer.WriteChromeTraceFile(*traceOut); err != nil {
			return err
		}
		fmt.Println("wrote chrome trace", *traceOut)
	}
	return nil
}

// buildResult renders the BUILD experiment: the Table II-style round rows
// plus the per-stage pipeline accounting.
type buildResult struct {
	stats  patchdb.Stats
	report *patchdb.BuildReport
}

func (b buildResult) String() string {
	var sb strings.Builder
	sb.WriteString("BUILD: end-to-end construction pipeline\n")
	for _, r := range b.report.Rounds {
		fmt.Fprintf(&sb, "  %s (search %s)\n", r, r.SearchTime.Round(time.Millisecond))
	}
	if b.report.Search.Searches > 0 {
		fmt.Fprintf(&sb, "  nearest-link engine: %s\n", b.report.Search)
	}
	fmt.Fprintf(&sb, "  dataset: nvd=%d wild=%d non-security=%d synthetic=%d (verifications: %d)\n",
		b.stats.NVD, b.stats.Wild, b.stats.NonSecurity, b.stats.Synthetic,
		b.report.HumanVerifications)
	sb.WriteString("  stage timings:\n")
	for _, line := range strings.Split(patchdb.FormatStages(b.report.Stages), "\n") {
		sb.WriteString("    " + line + "\n")
	}
	return strings.TrimRight(sb.String(), "\n")
}

// runBuild executes the full concurrent pipeline at the scale's sizes,
// rendering live per-stage progress on stderr. The build publishes into hub
// (so a -serve-metrics endpoint sees it live) and, when telemetryOut is
// non-empty, writes its RunReport artifact there.
func runBuild(scale experiments.Scale, workers int, hub *patchdb.TelemetryHub, telemetryOut string) (fmt.Stringer, error) {
	var mu sync.Mutex
	lastPct := map[patchdb.Stage]int{}
	ds, report, err := patchdb.Build(context.Background(), patchdb.BuilderConfig{
		Seed:            scale.Seed,
		NVDSize:         scale.NVDSeed,
		NonSecuritySize: scale.NonSecSeed,
		WildPools:       []int{scale.SetI, scale.SetII, scale.SetIII},
		RoundsPerPool:   []int{3, 1, 1},
		Workers:         workers,
		Telemetry:       hub,
		TelemetryOut:    telemetryOut,
		Progress: func(stage patchdb.Stage, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			pct := 100
			if total > 0 {
				pct = 100 * done / total
			}
			if p, ok := lastPct[stage]; ok && p == pct && done != total {
				return
			}
			lastPct[stage] = pct
			fmt.Fprintf(os.Stderr, "\r%-10s %d/%d (%d%%)   ", stage, done, total, pct)
			if done >= total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if telemetryOut != "" {
		fmt.Fprintln(os.Stderr, "wrote run report", telemetryOut)
	}
	return buildResult{stats: ds.Stats(), report: report}, nil
}
