package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenErrcanon = "../../internal/analysis/testdata/src/errcanon/a"

// lintArgs prefixes every invocation with a per-test cache directory so
// tests never write into the repo's .lintcache.
func lintArgs(t *testing.T, args ...string) []string {
	t.Helper()
	return append([]string{"-cache-dir", t.TempDir()}, args...)
}

func TestListChecks(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut.String())
	}
	for _, name := range []string{
		"determinism", "ctxloop", "errcanon", "telemetrysafe",
		"atomicwrite", "logcanon", "lockdiscipline", "goroleak", "closeleak",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheckListsAvailable(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, `unknown check "nosuch"`) {
		t.Errorf("stderr = %q", msg)
	}
	// The error must name the available checks so the fix is self-evident.
	for _, name := range []string{"available:", "determinism", "lockdiscipline", "goroleak", "closeleak"} {
		if !strings.Contains(msg, name) {
			t.Errorf("unknown-check error missing %q: %q", name, msg)
		}
	}
}

// TestTextFindings lints the errcanon golden package and expects findings in
// path:line:col form and a non-zero exit.
func TestTextFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(lintArgs(t, "-checks", "errcanon", goldenErrcanon), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr = %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected several findings, got:\n%s", out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "errcanon:") || !strings.Contains(line, ".go:") {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

// TestJSONFindings checks the -json mode: one JSON object per line carrying
// path, line, col, check, and message.
func TestJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(lintArgs(t, "-json", "-checks", "errcanon", goldenErrcanon), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr = %s", code, errOut.String())
	}
	sc := bufio.NewScanner(&out)
	n := 0
	for sc.Scan() {
		var d struct {
			Path    string `json:"path"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if d.Path == "" || d.Line <= 0 || d.Col <= 0 || d.Check != "errcanon" || d.Message == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
		n++
	}
	if n < 3 {
		t.Errorf("expected several JSON findings, got %d", n)
	}
}

// TestSARIFOutput writes a SARIF log for the errcanon golden and checks the
// shape CI consumes: version, tool name, rule IDs, and result locations with
// repo-relative URIs.
func TestSARIFOutput(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "lint.sarif")
	var out, errOut bytes.Buffer
	code := run(lintArgs(t, "-sarif", sarifPath, "-checks", "errcanon", goldenErrcanon), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr = %s", code, errOut.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("sarif file: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("parse sarif: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "patchdb-lint" {
		t.Errorf("tool name = %q", r.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, rule := range r.Tool.Driver.Rules {
		ruleIDs[rule.ID] = true
	}
	if !ruleIDs["errcanon"] {
		t.Errorf("rules missing errcanon: %v", ruleIDs)
	}
	if len(r.Results) < 3 {
		t.Fatalf("expected several results, got %d", len(r.Results))
	}
	for _, res := range r.Results {
		if res.RuleID != "errcanon" || res.Level != "error" {
			t.Errorf("result rule/level = %s/%s", res.RuleID, res.Level)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if !strings.HasSuffix(loc.ArtifactLocation.URI, ".go") || strings.Contains(loc.ArtifactLocation.URI, "\\") ||
			filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("URI not repo-relative forward-slash: %q", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("missing startLine in %+v", loc)
		}
	}
}

// TestStatsWarmRun runs the same lint twice against one cache directory and
// asserts the second run is all hits with zero source loads.
func TestStatsWarmRun(t *testing.T) {
	cacheDir := t.TempDir()
	args := []string{"-cache-dir", cacheDir, "-stats", "-checks", "errcanon", goldenErrcanon}

	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 1 {
		t.Fatalf("cold exit = %d; stderr = %s", code, err1.String())
	}
	var out2, err2 bytes.Buffer
	if code := run(args, &out2, &err2); code != 1 {
		t.Fatalf("warm exit = %d; stderr = %s", code, err2.String())
	}
	stats := err2.String()
	if !strings.Contains(stats, "cache_misses=0") || !strings.Contains(stats, "source_loads=0") {
		t.Errorf("warm stats not fully cached: %q", stats)
	}
	if out1.String() != out2.String() {
		t.Errorf("warm findings differ from cold:\ncold: %s\nwarm: %s", out1.String(), out2.String())
	}
}

// TestCleanPackageExitsZero lints a package that must be clean (the CLI's
// own source) and expects exit 0 with no output.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(lintArgs(t, "."), &out, &errOut); code != 0 {
		t.Fatalf("exit = %d; out = %s; stderr = %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got %s", out.String())
	}
}
