package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const goldenErrcanon = "../../internal/analysis/testdata/src/errcanon/a"

func TestListChecks(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "ctxloop", "errcanon", "telemetrysafe"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownCheck(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-checks", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown check") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

// TestTextFindings lints the errcanon golden package and expects findings in
// path:line:col form and a non-zero exit.
func TestTextFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-checks", "errcanon", goldenErrcanon}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr = %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected several findings, got:\n%s", out.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "errcanon:") || !strings.Contains(line, ".go:") {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

// TestJSONFindings checks the -json mode: one JSON object per line carrying
// path, line, col, check, and message.
func TestJSONFindings(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-checks", "errcanon", goldenErrcanon}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr = %s", code, errOut.String())
	}
	sc := bufio.NewScanner(&out)
	n := 0
	for sc.Scan() {
		var d struct {
			Path    string `json:"path"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if d.Path == "" || d.Line <= 0 || d.Col <= 0 || d.Check != "errcanon" || d.Message == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
		n++
	}
	if n < 3 {
		t.Errorf("expected several JSON findings, got %d", n)
	}
}

// TestCleanPackageExitsZero lints a package that must be clean (the CLI's
// own source) and expects exit 0 with no output.
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d; out = %s; stderr = %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output, got %s", out.String())
	}
}
