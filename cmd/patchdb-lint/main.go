// Command patchdb-lint runs patchdb's custom static-analysis suite — the
// determinism, ctxloop, errcanon, telemetrysafe, and atomicwrite analyzers
// — over the
// given packages and exits non-zero on findings. It is the machine check
// behind `make lint` (and therefore `make verify`): the invariants PRs 1-4
// established by convention fail the build the moment a change regresses
// them.
//
// Usage:
//
//	patchdb-lint [-json] [-checks determinism,ctxloop,...] [patterns...]
//
// Patterns default to ./... and follow go tool conventions (a directory, or
// dir/... for a subtree). Findings print as path:line:col: check: message;
// with -json each finding is one JSON object per line (path, line, col,
// check, message), consumable the same way as the BENCH_*.json artifacts.
//
// A finding is suppressed by an adjacent comment naming the check and a
// reason:
//
//	//lint:ignore determinism engine wall-clock is telemetry-only
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"patchdb/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("patchdb-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "patchdb-lint: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		path := d.Pos.Filename
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
		if *jsonOut {
			line, _ := json.Marshal(struct {
				Path    string `json:"path"`
				Line    int    `json:"line"`
				Col     int    `json:"col"`
				Check   string `json:"check"`
				Message string `json:"message"`
			}{path, d.Pos.Line, d.Pos.Column, d.Check, d.Message})
			fmt.Fprintln(stdout, string(line))
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", path, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "patchdb-lint: %d finding(s) across %d package unit(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
