// Command patchdb-lint runs patchdb's custom static-analysis suite — nine
// analyzers covering determinism, context discipline, error canon,
// telemetry safety, atomic writes, structured logging, lock discipline,
// goroutine leaks, and resource closing — over the given packages and exits
// non-zero on findings. It is the machine check behind `make lint` (and
// therefore `make verify`): the invariants earlier PRs established by
// convention fail the build the moment a change regresses them.
//
// Usage:
//
//	patchdb-lint [-json] [-sarif file] [-checks a,b] [-workers n]
//	             [-cache-dir dir] [-no-cache] [-stats] [patterns...]
//
// Patterns default to ./... and follow go tool conventions (a directory, or
// dir/... for a subtree). Findings print as path:line:col: check: message;
// with -json each finding is one JSON object per line (path, line, col,
// check, message). -sarif additionally writes a SARIF 2.1.0 log ("-" for
// stdout) for CI code-scanning upload.
//
// Packages are analyzed concurrently in dependency order by the incremental
// driver: results are cached per package under .lintcache/ (at the module
// root; override with -cache-dir, disable with -no-cache), keyed by a
// content hash of sources, enabled checks, analyzer versions, and the facts
// imported from dependencies — a warm run over an unchanged tree re-checks
// nothing. -stats prints the cache hit/miss summary to stderr. Results are
// identical with and without the cache and at any -workers value.
//
// A finding is suppressed by an adjacent comment naming the check and a
// reason:
//
//	//lint:ignore determinism engine wall-clock is telemetry-only
//
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"patchdb/internal/analysis"
	"patchdb/internal/atomicio"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("patchdb-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line instead of text")
	sarifPath := fs.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list the available checks and exit")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "max packages analyzed concurrently")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default: .lintcache under the module root)")
	noCache := fs.Bool("no-cache", false, "disable the result cache")
	stats := fs.Bool("stats", false, "print cache and timing statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected := analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				available := make([]string, 0, len(byName))
				for n := range byName {
					available = append(available, n)
				}
				sort.Strings(available)
				fmt.Fprintf(stderr, "patchdb-lint: unknown check %q (available: %s)\n",
					name, strings.Join(available, ", "))
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}

	driver := &analysis.Driver{
		Loader:    loader,
		Analyzers: analyzers,
		Workers:   *workers,
	}
	if !*noCache {
		driver.CacheDir = *cacheDir
		if driver.CacheDir == "" {
			driver.CacheDir = filepath.Join(root, ".lintcache")
		}
	}

	diags, runStats, err := driver.Run(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "patchdb-lint: %v\n", err)
		return 2
	}
	if *stats {
		fmt.Fprintf(stderr, "patchdb-lint: %s\n", runStats)
	}

	if *sarifPath != "" {
		var sarifErr error
		if *sarifPath == "-" {
			sarifErr = analysis.WriteSARIF(stdout, diags, analyzers, root)
		} else {
			sarifErr = atomicio.WriteTo(*sarifPath, func(w io.Writer) error {
				return analysis.WriteSARIF(w, diags, analyzers, root)
			})
		}
		if sarifErr != nil {
			fmt.Fprintf(stderr, "patchdb-lint: write sarif: %v\n", sarifErr)
			return 2
		}
	}

	for _, d := range diags {
		path := d.Pos.Filename
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
		if *jsonOut {
			line, _ := json.Marshal(struct {
				Path    string `json:"path"`
				Line    int    `json:"line"`
				Col     int    `json:"col"`
				Check   string `json:"check"`
				Message string `json:"message"`
			}{path, d.Pos.Line, d.Pos.Column, d.Check, d.Message})
			fmt.Fprintln(stdout, string(line))
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", path, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "patchdb-lint: %d finding(s) across %d package unit(s)\n", len(diags), runStats.Units)
		}
		return 1
	}
	return 0
}
