package patchdb

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"patchdb/internal/checkpoint"
	"patchdb/internal/core/augment"
	"patchdb/internal/core/oversample"
	"patchdb/internal/corpus"
	"patchdb/internal/diff"
	"patchdb/internal/faults"
	"patchdb/internal/features"
	"patchdb/internal/nvd"
	"patchdb/internal/oracle"
	"patchdb/internal/pipeline"
	"patchdb/internal/telemetry"
)

// Stage identifies one phase of the construction pipeline; see the Stage*
// constants.
type Stage = pipeline.Stage

// The pipeline stages reported through BuilderConfig.Progress and
// BuildReport.Stages.
const (
	StageCrawl      = pipeline.StageCrawl
	StageExtract    = pipeline.StageExtract
	StageSearch     = pipeline.StageSearch
	StageAugment    = pipeline.StageAugment
	StageSynthesize = pipeline.StageSynthesize
	StageCheckpoint = pipeline.StageCheckpoint
)

// StageStat is one stage's accumulated wall-clock time and item count.
type StageStat = pipeline.StageStat

// FormatStages renders BuildReport.Stages as an aligned table, one stage
// per line.
func FormatStages(stages []StageStat) string {
	return pipeline.FormatStats(stages)
}

// BuilderConfig parameterizes an end-to-end PatchDB construction run.
type BuilderConfig struct {
	// Seed drives all randomness (corpus, augmentation, synthesis). The
	// same Seed yields an identical dataset regardless of Workers.
	Seed int64
	// NVDSize is the number of NVD-indexed security patches (paper: 4076).
	NVDSize int
	// NonSecuritySize is the initial cleaned non-security set (paper: 8352).
	NonSecuritySize int
	// WildPools are the unlabeled pool sizes searched in sequence
	// (paper: 100K, 200K, 200K).
	WildPools []int
	// RoundsPerPool bounds rounds per pool (paper: 3, 1, 1). Empty uses the
	// paper schedule (3 for the first pool, 1 for the rest); any other
	// length than len(WildPools) is an error.
	RoundsPerPool []int
	// SyntheticPerPatch caps synthetic variants per natural patch
	// (0 disables synthesis).
	SyntheticPerPatch int
	// FeedNoise adds CVE entries without usable patch links, modeling the
	// NVD's incomplete references, as a fraction of NVDSize. Zero means the
	// default (0.1); any negative value disables feed noise entirely.
	FeedNoise float64
	// RatioThreshold is the augmentation loop's early-exit threshold: a
	// round whose verified-security ratio falls below it ends the pool's
	// schedule. Zero means the default (0.01); any negative value disables
	// the early exit, so every scheduled round runs.
	RatioThreshold float64
	// Workers bounds the concurrency of the crawl's fetch stage, per-commit
	// feature extraction, and the nearest link search (default: GOMAXPROCS).
	// The output is identical for any worker count.
	Workers int
	// FaultRate injects deterministic transient faults (429s with
	// Retry-After, 500s, connection hangs, truncated and corrupted bodies)
	// into the loopback NVD service at this per-request probability — the
	// chaos-testing knob (0 = no faults; see internal/faults). Fault
	// decisions derive from Seed, so a fault-injected build is reproducible
	// at any worker count.
	FaultRate float64
	// MaxRetries is the per-download retry budget after the first attempt
	// (0 = default 3; negative disables retries entirely).
	MaxRetries int
	// MaxCrawlFailureRatio is the quarantined-download ratio above which a
	// degraded crawl fails the build instead of merely setting
	// BuildReport.Degraded (0 = default 0.25; negative = never fail — the
	// quarantine is reported and the build proceeds).
	MaxCrawlFailureRatio float64
	// CheckpointDir, when non-empty, enables the crash-safe build journal:
	// Build writes a checkpoint (internal/checkpoint) at every stage
	// boundary — post-crawl, post-seed-extraction, after each augmentation
	// pool, and post-oversampling — so a killed build can be resumed. The
	// directory is created if needed; a fresh (non-Resume) build truncates
	// any journal already there.
	CheckpointDir string
	// Resume loads the journal in CheckpointDir and skips every stage it
	// records as completed, producing a dataset bit-identical to an
	// uninterrupted run — including the crawl's quarantine list and
	// Degraded verdict, which are restored rather than re-derived. The
	// journal's seed and config fingerprint must match this config (Workers
	// may differ: output is worker-invariant); a mismatch fails with
	// ErrCheckpointMismatch. Requires CheckpointDir.
	Resume bool
	// CheckpointFault, when non-nil, injects a deterministic crash
	// (ErrInjectedCrash) at one stage's checkpoint write — the chaos hook
	// the kill-and-resume harness drives. Ignored without CheckpointDir.
	CheckpointFault *CheckpointFault
	// Progress, when non-nil, observes pipeline advancement per stage. It
	// is called synchronously from pipeline goroutines and must be cheap
	// and safe for concurrent use.
	Progress pipeline.Progress
	// Telemetry, when non-nil, is the hub (metrics registry + span tracer)
	// the run instruments into — point a telemetry.Serve endpoint at it to
	// scrape /metrics during the build. Nil uses a private hub, so
	// concurrent Builds never mix counters.
	Telemetry *telemetry.Hub
	// TelemetryOut, when non-empty, is a path Build writes the end-of-run
	// RunReport JSON to (also available as BuildReport.Run).
	TelemetryOut string
}

func (c BuilderConfig) withDefaults() BuilderConfig {
	if c.NVDSize <= 0 {
		c.NVDSize = 400
	}
	if c.NonSecuritySize <= 0 {
		c.NonSecuritySize = 2 * c.NVDSize
	}
	if len(c.WildPools) == 0 {
		c.WildPools = []int{8000, 16000, 16000}
		c.RoundsPerPool = []int{3, 1, 1}
	}
	if len(c.RoundsPerPool) == 0 {
		c.RoundsPerPool = make([]int, len(c.WildPools))
		for i := range c.RoundsPerPool {
			c.RoundsPerPool[i] = 1
		}
		c.RoundsPerPool[0] = 3
	}
	switch {
	case c.FeedNoise == 0:
		c.FeedNoise = 0.1
	case c.FeedNoise < 0:
		c.FeedNoise = 0 // explicit disable
	}
	if c.RatioThreshold == 0 {
		c.RatioThreshold = 0.01
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0 // explicit disable: a single attempt per fetch
	}
	switch {
	case c.MaxCrawlFailureRatio == 0:
		c.MaxCrawlFailureRatio = 0.25
	case c.MaxCrawlFailureRatio < 0:
		c.MaxCrawlFailureRatio = 1 // ratios never exceed 1: never fail
	}
	return c
}

// BuildReport records what happened during a Build.
type BuildReport struct {
	// Crawl summarizes the NVD crawl, including retry/quarantine accounting.
	Crawl nvd.CrawlStats
	// Degraded reports a crawl that quarantined some downloads but stayed
	// within MaxCrawlFailureRatio: the dataset is complete except for the
	// patches listed in Crawl.Quarantine.
	Degraded bool
	// Rounds is the per-round augmentation accounting (Table II), including
	// each round's nearest-link search time and engine stats.
	Rounds []AugmentRound
	// Search aggregates the nearest-link engine accounting across all
	// augmentation rounds: distance evaluations, pruned fraction, heap
	// activity, and total search wall-clock.
	Search NearestLinkTotals
	// HumanVerifications counts simulated manual inspections.
	HumanVerifications int
	// ResumedFrom names the checkpoint stage this build resumed from — the
	// last completed stage in the journal — or "" for a from-scratch run.
	ResumedFrom string
	// Stages is the per-stage wall-clock and item accounting of the run,
	// in pipeline order.
	Stages []StageStat
	// Run is the unified telemetry artifact of the build: stage timings,
	// crawl and nearest-link accounting, the metrics-registry snapshot, and
	// the buffered trace spans.
	Run *telemetry.RunReport
}

// Build runs the full PatchDB pipeline against a simulated world: it
// generates the corpus (repositories + commits), serves an NVD feed over
// loopback HTTP, crawls it, augments the dataset with nearest link search
// and (simulated) human verification, and synthesizes patch variants.
//
// The crawl's fetch stage, per-commit feature extraction, and the nearest
// link search all run on worker pools bounded by cfg.Workers; the resulting
// dataset is a pure function of cfg.Seed regardless of the worker count.
// ctx is honored across every stage: cancellation aborts the crawl, the
// extraction pools, augmentation rounds, and synthesis with a wrapped
// context error.
//
// The returned dataset mirrors the paper's structure: NVD-based, wild-based,
// cleaned non-security, and synthetic components.
//
// With CheckpointDir set, Build journals its state at every stage boundary
// (internal/checkpoint) and, with Resume, skips stages the journal already
// holds — the resumed dataset is bit-identical to an uninterrupted run's.
func Build(ctx context.Context, cfg BuilderConfig) (*Dataset, *BuildReport, error) {
	if len(cfg.RoundsPerPool) != 0 && len(cfg.WildPools) != 0 &&
		len(cfg.RoundsPerPool) != len(cfg.WildPools) {
		return nil, nil, fmt.Errorf("build: RoundsPerPool has %d entries for %d wild pools",
			len(cfg.RoundsPerPool), len(cfg.WildPools))
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, nil, fmt.Errorf("build: Resume requires CheckpointDir")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 9000))
	hub := cfg.Telemetry
	if hub == nil {
		hub = telemetry.NewHub()
	}
	ctx = telemetry.WithHub(ctx, hub)
	ctx, buildSpan := telemetry.Start(ctx, "build")
	defer buildSpan.End()
	metrics := pipeline.NewMetrics(hub.Registry)

	// The checkpoint journal (nil when CheckpointDir is unset). The plan
	// fixes stage names up front; the fingerprint binds the journal to every
	// output-affecting config field so Resume refuses a mismatched config.
	plan := stagePlan(cfg)
	planIdx := make(map[string]int, len(plan))
	for i, s := range plan {
		planIdx[s] = i
	}
	var jr *checkpoint.Journal
	if cfg.CheckpointDir != "" {
		fp, err := checkpoint.Fingerprint(fingerprintOf(cfg))
		if err != nil {
			return nil, nil, fmt.Errorf("build: %w", err)
		}
		jr, err = checkpoint.Open(cfg.CheckpointDir, checkpoint.Options{
			Seed:        cfg.Seed,
			Fingerprint: fp,
			Resume:      cfg.Resume,
			Fault:       cfg.CheckpointFault,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("build: %w", err)
		}
	}

	gen := corpus.NewGenerator(corpus.Config{Seed: cfg.Seed})
	nvdCommits := gen.GenerateNVD(cfg.NVDSize)
	nonSec := gen.GenerateNonSecurity(cfg.NonSecuritySize)
	pools := make([][]*corpus.LabeledCommit, len(cfg.WildPools))
	for i, n := range cfg.WildPools {
		pools[i] = gen.GenerateWild(n)
	}

	// Ground-truth labels for the verification oracle.
	labels := make(map[string]bool)
	byHash := make(map[string]*corpus.LabeledCommit)
	for _, set := range append([][]*corpus.LabeledCommit{nvdCommits, nonSec}, pools...) {
		for _, lc := range set {
			labels[lc.Commit.Hash] = lc.Security
			byHash[lc.Commit.Hash] = lc
		}
	}
	verifier := oracle.New(labels, oracle.WithSeed(cfg.Seed))

	report := &BuildReport{}
	ds := &Dataset{}
	var seedFeatures [][]float64
	var crawled []*nvd.CrawledPatch
	round := 1

	// Resume: load the last completed stage's cumulative state and restore
	// everything downstream stages read — dataset, crawl stats (including
	// the quarantine list and Degraded verdict), seed features, round
	// accounting, and the oracle's inspection counter.
	resumeIdx := -1
	if jr != nil && cfg.Resume {
		if last := jr.LastCompleted(); last != "" {
			idx, ok := planIdx[last]
			if !ok {
				return nil, nil, fmt.Errorf("build: resume: journaled stage %q is not in this build's plan", last)
			}
			var st buildState
			if err := jr.Load(ctx, last, &st); err != nil {
				return nil, nil, fmt.Errorf("build: resume: %w", err)
			}
			resumeIdx = idx
			report.ResumedFrom = last
			report.Crawl = st.Crawl
			report.Degraded = st.Degraded
			report.Rounds = st.Rounds
			report.Search = st.Search
			if st.Dataset != nil {
				ds = st.Dataset
			}
			seedFeatures = st.SeedFeatures
			round = st.NextRound
			verifier.SetInspected(st.HumanVerifications)
			if len(st.Crawled) > 0 {
				restored, err := nvd.RestorePatches(st.Crawled)
				if err != nil {
					return nil, nil, fmt.Errorf("build: resume: %w", err)
				}
				crawled = restored
			}
		}
	}
	// stageDone reports whether the journal already holds this stage's
	// output (always false without Resume).
	stageDone := func(stage string) bool {
		idx, ok := planIdx[stage]
		return ok && idx <= resumeIdx
	}
	var ckptNotify *pipeline.Notifier
	if jr != nil {
		ckptNotify = pipeline.NewNotifier(StageCheckpoint, len(plan), cfg.Progress)
	}
	// writeCkpt journals the build's cumulative state at a stage boundary.
	// An injected CheckpointFault surfaces here as ErrInjectedCrash.
	writeCkpt := func(stage string) error {
		if jr == nil {
			return nil
		}
		stop := metrics.Timer(StageCheckpoint)
		err := jr.Write(ctx, stage, buildState{
			Stage:              stage,
			Dataset:            ds,
			Crawl:              report.Crawl,
			Degraded:           report.Degraded,
			Crawled:            nvd.SavePatches(crawled),
			SeedFeatures:       seedFeatures,
			Rounds:             report.Rounds,
			Search:             report.Search,
			HumanVerifications: verifier.Inspected(),
			NextRound:          round,
		})
		stop(1)
		if err != nil {
			return fmt.Errorf("build: checkpoint stage %q: %w", stage, err)
		}
		ckptNotify.Done(1)
		return nil
	}

	noiseCount := int(float64(cfg.NVDSize) * cfg.FeedNoise)
	if stageDone(ckptStageCrawl) {
		jr.NoteSkip(ctx, ckptStageCrawl)
		// Burn the feed's rng draws so later rng consumers see the same
		// stream an uninterrupted build would.
		seedFeed(nil, "", nvdCommits, noiseCount, rng)
	} else {
		// Serve the NVD and crawl it, exercising the real HTTP code path.
		// With FaultRate set, the service is wrapped in the
		// seed-deterministic fault injector so the crawl's resilience
		// machinery is exercised end to end. The service's lifetime is the
		// crawl: a closure scopes the Close.
		if err := func() error {
			svc := nvd.NewService(gen.Store())
			if cfg.FaultRate > 0 {
				svc.Wrap = faults.New(faults.Config{
					Seed:       cfg.Seed,
					Routes:     []faults.Route{{Rate: cfg.FaultRate}},
					RetryAfter: 20 * time.Millisecond,
					HangFor:    25 * time.Millisecond,
					Registry:   hub.Registry,
				}).Wrap
			}
			baseURL, err := svc.Start()
			if err != nil {
				return err
			}
			defer svc.Close()
			seedFeed(svc, baseURL, nvdCommits, noiseCount, rng)
			crawler := &nvd.Crawler{
				BaseURL:     baseURL,
				Concurrency: cfg.Workers,
				Seed:        cfg.Seed,
				MaxAttempts: cfg.MaxRetries + 1,
				// The upstream is loopback: short backoff keeps
				// fault-injected builds fast while still exercising the
				// schedule.
				RetryBaseDelay: 10 * time.Millisecond,
				RetryMaxDelay:  250 * time.Millisecond,
			}
			if cfg.Progress != nil {
				crawler.Progress = func(done, total int) {
					cfg.Progress(StageCrawl, done, total)
				}
			}
			stopCrawl := metrics.Timer(StageCrawl)
			crawled, report.Crawl, err = crawler.Crawl(ctx)
			if err != nil {
				return fmt.Errorf("crawl: %w", err)
			}
			stopCrawl(report.Crawl.Downloaded)
			// Graceful degradation: quarantined downloads within the
			// threshold are a warning (Degraded); beyond it the build fails
			// rather than silently shipping a hollowed-out dataset.
			if total := report.Crawl.Downloaded + report.Crawl.Quarantined; total > 0 && report.Crawl.Quarantined > 0 {
				ratio := float64(report.Crawl.Quarantined) / float64(total)
				if ratio > cfg.MaxCrawlFailureRatio {
					return fmt.Errorf("crawl degraded beyond threshold: %d/%d downloads quarantined (%.1f%% > %.1f%%)",
						report.Crawl.Quarantined, total, 100*ratio, 100*cfg.MaxCrawlFailureRatio)
				}
				report.Degraded = true
			}
			return nil
		}(); err != nil {
			return nil, nil, fmt.Errorf("build: %w", err)
		}
		// The checkpoint lands after the threshold check: a build that
		// failed it must re-crawl on the next attempt, not resume into a
		// hollowed-out dataset.
		if err := writeCkpt(ckptStageCrawl); err != nil {
			return nil, nil, err
		}
	}

	// Total extraction workload: the crawled seed plus every pool commit
	// still to be processed (resumed stages extract nothing).
	extractTotal := len(crawled)
	for i, pool := range pools {
		if !stageDone(ckptStageAugment(i)) {
			extractTotal += len(pool)
		}
	}
	extractNotify := pipeline.NewNotifier(StageExtract, extractTotal, cfg.Progress)

	if stageDone(ckptStageSeed) {
		jr.NoteSkip(ctx, ckptStageSeed)
	} else {
		// NVD-based dataset from the crawled patches; feature extraction
		// runs on the worker pool, record assembly stays in feed order.
		stopExtract := metrics.Timer(StageExtract)
		_, seedSpan := telemetry.Start(ctx, "extract.seed")
		seedSpan.SetAttr("items", len(crawled))
		crawledFeatures, err := mapConcurrently(ctx, len(crawled), cfg.Workers, extractNotify,
			func(i int) []float64 { return features.Extract(crawled[i].Patch, 0) })
		seedSpan.End()
		if err != nil {
			return nil, nil, fmt.Errorf("build: extract nvd features: %w", err)
		}
		stopExtract(len(crawled))
		seedFeatures = make([][]float64, 0, len(crawled))
		for i, cp := range crawled {
			lc, ok := byHash[cp.Hash]
			if !ok {
				continue
			}
			ds.NVD = append(ds.NVD, Record{
				ID: cp.Hash, Repo: cp.Repo, CVE: cp.CVE, Security: true,
				Pattern: lc.Pattern, Source: "nvd", Text: diff.Format(cp.Patch),
			})
			seedFeatures = append(seedFeatures, crawledFeatures[i])
		}

		// Initial cleaned non-security dataset.
		for _, lc := range nonSec {
			ds.NonSecurity = append(ds.NonSecurity, Record{
				ID: lc.Commit.Hash, Repo: lc.Commit.Repo, Security: false,
				Source: "wild", Text: diff.Format(lc.Commit.Patch()),
			})
		}
		// The crawl output is folded into the dataset now; later
		// checkpoints journal it empty.
		crawled = nil
		if err := writeCkpt(ckptStageSeed); err != nil {
			return nil, nil, err
		}
	}

	// Wild-based dataset via augmentation rounds.
	totalRounds := 0
	for _, r := range cfg.RoundsPerPool {
		totalRounds += r
	}
	augmentNotify := pipeline.NewNotifier(StageAugment, totalRounds, cfg.Progress)
	for i, pool := range pools {
		if stageDone(ckptStageAugment(i)) {
			jr.NoteSkip(ctx, ckptStageAugment(i))
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("build: canceled before pool %d: %w", i+1, err)
		}
		stopExtract := metrics.Timer(StageExtract)
		_, poolSpan := telemetry.Start(ctx, "extract.pool")
		poolSpan.SetAttr("pool", i+1)
		poolSpan.SetAttr("items", len(pool))
		poolFeatures, err := mapConcurrently(ctx, len(pool), cfg.Workers, extractNotify,
			func(j int) []float64 { return features.Extract(pool[j].Commit.Patch(), 0) })
		poolSpan.End()
		if err != nil {
			return nil, nil, fmt.Errorf("build: extract pool %d features: %w", i+1, err)
		}
		stopExtract(len(pool))
		items := make([]augment.Item, len(pool))
		for j, lc := range pool {
			items[j] = augment.Item{ID: lc.Commit.Hash, Features: poolFeatures[j]}
		}

		stopAugment := metrics.Timer(StageAugment)
		_, augSpan := telemetry.Start(ctx, "augment.pool")
		augSpan.SetAttr("pool", i+1)
		res, err := augment.Run(ctx, seedFeatures, items, verifier, round, augment.Config{
			MaxRounds:      cfg.RoundsPerPool[i],
			RatioThreshold: cfg.RatioThreshold,
			Workers:        cfg.Workers,
			Registry:       hub.Registry,
		})
		if err != nil {
			augSpan.End()
			return nil, nil, fmt.Errorf("build: %w", err)
		}
		augSpan.SetAttr("rounds", len(res.Rounds))
		augSpan.End()
		stopAugment(len(res.Rounds))
		for _, r := range res.Rounds {
			metrics.Observe(StageSearch, r.SearchTime, r.SearchRange)
		}
		// The run's engine totals are snapshotted once by augment.Run after
		// its final round, so the build report cannot under-count rescans.
		report.Search.Merge(res.Search)
		augmentNotify.Done(len(res.Rounds))
		report.Rounds = append(report.Rounds, res.Rounds...)
		round += len(res.Rounds)
		seedFeatures = res.SeedFeatures
		for _, id := range res.SecurityIDs {
			lc := byHash[id]
			ds.Wild = append(ds.Wild, Record{
				ID: id, Repo: lc.Commit.Repo, Security: true,
				Pattern: lc.Pattern, Source: "wild", Text: diff.Format(lc.Commit.Patch()),
			})
		}
		for _, id := range res.NonSecurityIDs {
			lc := byHash[id]
			ds.NonSecurity = append(ds.NonSecurity, Record{
				ID: id, Repo: lc.Commit.Repo, Security: false,
				Source: "wild", Text: diff.Format(lc.Commit.Patch()),
			})
		}
		if err := writeCkpt(ckptStageAugment(i)); err != nil {
			return nil, nil, err
		}
	}
	report.HumanVerifications = verifier.Inspected()

	// Synthetic dataset via source-level oversampling.
	if cfg.SyntheticPerPatch > 0 && stageDone(ckptStageOversample) {
		jr.NoteSkip(ctx, ckptStageOversample)
	} else if cfg.SyntheticPerPatch > 0 {
		synthTotal := len(ds.NVD) + len(ds.Wild) + len(ds.NonSecurity)
		synthNotify := pipeline.NewNotifier(StageSynthesize, synthTotal, cfg.Progress)
		stopSynth := metrics.Timer(StageSynthesize)
		_, synthSpan := telemetry.Start(ctx, "synthesize")
		defer synthSpan.End()
		ov := &oversample.Oversampler{MaxPerPatch: cfg.SyntheticPerPatch, Rand: rng}
		synthesize := func(recs []Record, security bool) error {
			for _, r := range recs {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("build: synthesis canceled: %w", err)
				}
				lc, ok := byHash[r.ID]
				if !ok {
					synthNotify.Done(1)
					continue
				}
				syns, err := ov.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After)
				if err != nil {
					return fmt.Errorf("build: synthesize %s: %w", r.ID, err)
				}
				for _, s := range syns {
					ds.Synthetic = append(ds.Synthetic, Record{
						ID: s.Patch.Commit, Repo: r.Repo, Security: security,
						Pattern: r.Pattern, Source: "synthetic", Text: diff.Format(s.Patch),
					})
				}
				synthNotify.Done(1)
			}
			return nil
		}
		if err := synthesize(ds.NVD, true); err != nil {
			return nil, nil, err
		}
		if err := synthesize(ds.Wild, true); err != nil {
			return nil, nil, err
		}
		if err := synthesize(ds.NonSecurity, false); err != nil {
			return nil, nil, err
		}
		stopSynth(len(ds.Synthetic))
		synthSpan.SetAttr("items", len(ds.Synthetic))
		synthSpan.End()
		if err := writeCkpt(ckptStageOversample); err != nil {
			return nil, nil, err
		}
	}
	report.Stages = metrics.Snapshot()
	buildSpan.End()
	report.Run = buildRunReport(hub, report)
	if cfg.TelemetryOut != "" {
		if err := report.Run.WriteFile(cfg.TelemetryOut); err != nil {
			return nil, nil, fmt.Errorf("build: %w", err)
		}
	}
	return ds, report, nil
}

// buildRunReport assembles the unified telemetry artifact of a finished
// build: stage timings, crawl and nearest-link accounting, the registry
// snapshot, and the trace buffer.
func buildRunReport(hub *telemetry.Hub, report *BuildReport) *telemetry.RunReport {
	rr := telemetry.NewRunReport("patchdb.Build", hub)
	for _, st := range report.Stages {
		rr.Stages = append(rr.Stages, telemetry.StageReport{
			Stage:      string(st.Stage),
			DurationNS: st.Duration.Nanoseconds(),
			Items:      st.Items,
		})
	}
	rr.Crawl = &telemetry.CrawlReport{
		Entries:         report.Crawl.Entries,
		WithPatchRefs:   report.Crawl.WithPatchRefs,
		Downloaded:      report.Crawl.Downloaded,
		EmptyAfterClean: report.Crawl.EmptyAfterClean,
		Retries:         report.Crawl.Retries,
		Quarantined:     report.Crawl.Quarantined,
		BreakerTrips:    report.Crawl.BreakerTrips,
		Degraded:        report.Degraded,
	}
	rr.Search = &telemetry.SearchReport{
		Searches:       report.Search.Searches,
		DistanceEvals:  report.Search.DistanceEvals,
		NormPruned:     report.Search.NormPruned,
		EarlyExited:    report.Search.EarlyExited,
		PrunedFraction: report.Search.PrunedFraction(),
		HeapPops:       report.Search.HeapPops,
		SecondBestHits: report.Search.SecondBestHits,
		Rescans:        report.Search.Rescans,
		DurationNS:     report.Search.Duration.Nanoseconds(),
	}
	return rr
}

// mapConcurrently computes fn(i) for i in [0, n) on a bounded worker pool,
// returning the results indexed by i — the output is deterministic for any
// worker count. It stops early (returning a wrapped context error) when ctx
// is canceled, and reports per-item completion to notify.
func mapConcurrently[T any](ctx context.Context, n, workers int, notify *pipeline.Notifier, fn func(int) T) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					// Drained without computing; still reported so progress
					// reaches the total on cancellation.
					notify.Done(1)
					continue
				}
				out[i] = fn(i)
				notify.Done(1)
			}
		}()
	}
	submitted := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case idxCh <- i:
			submitted++
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if submitted < n {
		notify.Done(n - submitted)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func pickSeverity(rng *rand.Rand) string {
	return []string{"LOW", "MEDIUM", "HIGH", "CRITICAL"}[rng.Intn(4)]
}
