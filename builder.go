package patchdb

import (
	"context"
	"fmt"
	"math/rand"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/oversample"
	"patchdb/internal/corpus"
	"patchdb/internal/diff"
	"patchdb/internal/features"
	"patchdb/internal/nvd"
	"patchdb/internal/oracle"
)

// BuilderConfig parameterizes an end-to-end PatchDB construction run.
type BuilderConfig struct {
	// Seed drives all randomness (corpus, augmentation, synthesis).
	Seed int64
	// NVDSize is the number of NVD-indexed security patches (paper: 4076).
	NVDSize int
	// NonSecuritySize is the initial cleaned non-security set (paper: 8352).
	NonSecuritySize int
	// WildPools are the unlabeled pool sizes searched in sequence
	// (paper: 100K, 200K, 200K).
	WildPools []int
	// RoundsPerPool bounds rounds per pool (paper: 3, 1, 1). Must have the
	// same length as WildPools.
	RoundsPerPool []int
	// SyntheticPerPatch caps synthetic variants per natural patch
	// (0 disables synthesis).
	SyntheticPerPatch int
	// FeedNoise adds CVE entries without usable patch links, modeling the
	// NVD's incomplete references (default 0.1 of NVDSize).
	FeedNoise float64
}

func (c BuilderConfig) withDefaults() BuilderConfig {
	if c.NVDSize <= 0 {
		c.NVDSize = 400
	}
	if c.NonSecuritySize <= 0 {
		c.NonSecuritySize = 2 * c.NVDSize
	}
	if len(c.WildPools) == 0 {
		c.WildPools = []int{8000, 16000, 16000}
		c.RoundsPerPool = []int{3, 1, 1}
	}
	if len(c.RoundsPerPool) != len(c.WildPools) {
		c.RoundsPerPool = make([]int, len(c.WildPools))
		for i := range c.RoundsPerPool {
			c.RoundsPerPool[i] = 1
		}
		c.RoundsPerPool[0] = 3
	}
	if c.FeedNoise <= 0 {
		c.FeedNoise = 0.1
	}
	return c
}

// BuildReport records what happened during a Build.
type BuildReport struct {
	// Crawl summarizes the NVD crawl.
	Crawl nvd.CrawlStats
	// Rounds is the per-round augmentation accounting (Table II).
	Rounds []AugmentRound
	// HumanVerifications counts simulated manual inspections.
	HumanVerifications int
}

// Build runs the full PatchDB pipeline against a simulated world: it
// generates the corpus (repositories + commits), serves an NVD feed over
// loopback HTTP, crawls it, augments the dataset with nearest link search
// and (simulated) human verification, and synthesizes patch variants.
//
// The returned dataset mirrors the paper's structure: NVD-based, wild-based,
// cleaned non-security, and synthetic components.
func Build(ctx context.Context, cfg BuilderConfig) (*Dataset, *BuildReport, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 9000))

	gen := corpus.NewGenerator(corpus.Config{Seed: cfg.Seed})
	nvdCommits := gen.GenerateNVD(cfg.NVDSize)
	nonSec := gen.GenerateNonSecurity(cfg.NonSecuritySize)
	pools := make([][]*corpus.LabeledCommit, len(cfg.WildPools))
	for i, n := range cfg.WildPools {
		pools[i] = gen.GenerateWild(n)
	}

	// Ground-truth labels for the verification oracle.
	labels := make(map[string]bool)
	byHash := make(map[string]*corpus.LabeledCommit)
	for _, set := range append([][]*corpus.LabeledCommit{nvdCommits, nonSec}, pools...) {
		for _, lc := range set {
			labels[lc.Commit.Hash] = lc.Security
			byHash[lc.Commit.Hash] = lc
		}
	}
	verifier := oracle.New(labels, oracle.WithSeed(cfg.Seed))

	// Serve the NVD and crawl it, exercising the real HTTP code path.
	svc := nvd.NewService(gen.Store())
	baseURL, err := svc.Start()
	if err != nil {
		return nil, nil, fmt.Errorf("build: %w", err)
	}
	defer svc.Close()
	for _, lc := range nvdCommits {
		svc.AddEntry(nvd.Entry{
			ID:          lc.CVE,
			Description: lc.Commit.Message,
			Published:   lc.Commit.Date,
			Severity:    pickSeverity(rng),
			References: []nvd.Reference{{
				URL:  nvd.GitHubCommitURL(baseURL, lc.Commit.Repo, lc.Commit.Hash),
				Tags: []string{"Patch", "Third Party Advisory"},
			}},
		})
	}
	// Entries with no usable patch link (the NVD's missing references).
	for i := 0; i < int(float64(cfg.NVDSize)*cfg.FeedNoise); i++ {
		svc.AddEntry(nvd.Entry{
			ID:          fmt.Sprintf("CVE-%d-%05d", 2002+rng.Intn(18), 90000+i),
			Description: "vulnerability without patch reference",
			References: []nvd.Reference{{
				URL:  "https://advisories.example.com/a/" + fmt.Sprint(i),
				Tags: []string{"Vendor Advisory"},
			}},
		})
	}
	crawler := &nvd.Crawler{BaseURL: baseURL}
	crawled, crawlStats, err := crawler.Crawl(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("build: crawl: %w", err)
	}

	report := &BuildReport{Crawl: crawlStats}
	ds := &Dataset{}

	// NVD-based dataset from the crawled patches.
	seedFeatures := make([][]float64, 0, len(crawled))
	for _, cp := range crawled {
		lc, ok := byHash[cp.Hash]
		if !ok {
			continue
		}
		ds.NVD = append(ds.NVD, Record{
			ID: cp.Hash, Repo: cp.Repo, CVE: cp.CVE, Security: true,
			Pattern: lc.Pattern, Source: "nvd", Text: diff.Format(cp.Patch),
		})
		seedFeatures = append(seedFeatures, features.Extract(cp.Patch, 0))
	}

	// Initial cleaned non-security dataset.
	for _, lc := range nonSec {
		ds.NonSecurity = append(ds.NonSecurity, Record{
			ID: lc.Commit.Hash, Repo: lc.Commit.Repo, Security: false,
			Source: "wild", Text: diff.Format(lc.Commit.Patch()),
		})
	}

	// Wild-based dataset via augmentation rounds.
	round := 1
	for i, pool := range pools {
		items := make([]augment.Item, len(pool))
		for j, lc := range pool {
			items[j] = augment.Item{ID: lc.Commit.Hash, Features: features.Extract(lc.Commit.Patch(), 0)}
		}
		res, err := augment.Run(seedFeatures, items, verifier, round, augment.Config{
			MaxRounds:      cfg.RoundsPerPool[i],
			RatioThreshold: 0.01,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("build: %w", err)
		}
		report.Rounds = append(report.Rounds, res.Rounds...)
		round += len(res.Rounds)
		seedFeatures = res.SeedFeatures
		for _, id := range res.SecurityIDs {
			lc := byHash[id]
			ds.Wild = append(ds.Wild, Record{
				ID: id, Repo: lc.Commit.Repo, Security: true,
				Pattern: lc.Pattern, Source: "wild", Text: diff.Format(lc.Commit.Patch()),
			})
		}
		for _, id := range res.NonSecurityIDs {
			lc := byHash[id]
			ds.NonSecurity = append(ds.NonSecurity, Record{
				ID: id, Repo: lc.Commit.Repo, Security: false,
				Source: "wild", Text: diff.Format(lc.Commit.Patch()),
			})
		}
	}
	report.HumanVerifications = verifier.Inspected()

	// Synthetic dataset via source-level oversampling.
	if cfg.SyntheticPerPatch > 0 {
		ov := &oversample.Oversampler{MaxPerPatch: cfg.SyntheticPerPatch, Rand: rng}
		synthesize := func(recs []Record, security bool) error {
			for _, r := range recs {
				lc, ok := byHash[r.ID]
				if !ok {
					continue
				}
				syns, err := ov.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After)
				if err != nil {
					return fmt.Errorf("build: synthesize %s: %w", r.ID, err)
				}
				for _, s := range syns {
					ds.Synthetic = append(ds.Synthetic, Record{
						ID: s.Patch.Commit, Repo: r.Repo, Security: security,
						Pattern: r.Pattern, Source: "synthetic", Text: diff.Format(s.Patch),
					})
				}
			}
			return nil
		}
		if err := synthesize(ds.NVD, true); err != nil {
			return nil, nil, err
		}
		if err := synthesize(ds.Wild, true); err != nil {
			return nil, nil, err
		}
		if err := synthesize(ds.NonSecurity, false); err != nil {
			return nil, nil, err
		}
	}
	return ds, report, nil
}

func pickSeverity(rng *rand.Rand) string {
	return []string{"LOW", "MEDIUM", "HIGH", "CRITICAL"}[rng.Intn(4)]
}
