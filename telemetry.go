package patchdb

import (
	"context"

	"patchdb/internal/pipeline"
	"patchdb/internal/telemetry"
)

// TelemetryHub bundles the two sinks a run instruments into: the metrics
// registry (counters, gauges, fixed-bucket histograms) and the span tracer
// (bounded in-memory buffer with a JSONL exporter). Pass one to
// BuilderConfig.Telemetry to observe a Build, and to ServeTelemetry to
// scrape it over HTTP while the build runs.
type TelemetryHub = telemetry.Hub

// TelemetryServer is a running /metrics + /debug/pprof endpoint.
type TelemetryServer = telemetry.Server

// RunReport is the structured end-of-run telemetry artifact: per-stage
// timings, crawl retry/circuit-breaker/quarantine accounting, degradation
// state, nearest-link engine counters, the full metrics snapshot, and the
// buffered trace spans, as one JSON document.
type RunReport = telemetry.RunReport

// RunReportStage is one pipeline stage's accounting inside a RunReport.
type RunReportStage = telemetry.StageReport

// DefaultRunReportPath is the conventional RunReport output filename.
const DefaultRunReportPath = telemetry.DefaultRunReportPath

// NewTelemetryHub creates a hub with a fresh registry and tracer.
func NewTelemetryHub() *TelemetryHub { return telemetry.NewHub() }

// DefaultTelemetryHub returns the process-wide hub (what instrumentation
// uses when no hub travels in the context).
func DefaultTelemetryHub() *TelemetryHub { return telemetry.Default() }

// WithTelemetryHub returns a context carrying hub; instrumented layers
// (the crawler, the nearest-link engine, the builder) publish to the hub in
// their context instead of the process-wide default.
func WithTelemetryHub(ctx context.Context, hub *TelemetryHub) context.Context {
	return telemetry.WithHub(ctx, hub)
}

// ServeTelemetry binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// hub's Prometheus-text /metrics plus the /debug/pprof profiling endpoints
// until Close. A nil hub serves the process-wide default hub.
func ServeTelemetry(addr string, hub *TelemetryHub) (*TelemetryServer, error) {
	return telemetry.Serve(addr, hub)
}

// NewRunReport seeds a report with tool name plus the hub's metrics
// snapshot and span buffer; callers append their stage accounting.
func NewRunReport(tool string, hub *TelemetryHub) *RunReport {
	return telemetry.NewRunReport(tool, hub)
}

// StageMetrics accumulates per-stage timings and item counts (the same
// adapter the builder uses internally). Stage names outside the builtin
// pipeline stages are allowed; they render after the known stages.
type StageMetrics = pipeline.Metrics

// NewStageMetrics creates stage metrics backed by hub's registry, so stage
// counters appear on the hub's /metrics endpoint and in its RunReports.
// A nil hub gives the metrics a private registry.
func NewStageMetrics(hub *TelemetryHub) *StageMetrics {
	if hub == nil {
		return pipeline.NewMetrics(nil)
	}
	return pipeline.NewMetrics(hub.Registry)
}
