package patchdb

import (
	"fmt"
	"math/rand"

	"patchdb/internal/checkpoint"
	"patchdb/internal/corpus"
	"patchdb/internal/nvd"
)

// CheckpointFault injects a deterministic crash at one checkpoint stage
// boundary — the chaos-testing knob behind the kill-and-resume matrix (see
// internal/experiments/resumebench).
type CheckpointFault = checkpoint.Fault

// Placement of an injected checkpoint crash relative to the journal write.
const (
	// FaultAfterWrite crashes after the stage is durably journaled: resume
	// must skip the stage.
	FaultAfterWrite = checkpoint.FaultAfterWrite
	// FaultBeforeWrite crashes after the stage's work but before its journal
	// write: the stage's output is lost and resume must re-run it.
	FaultBeforeWrite = checkpoint.FaultBeforeWrite
)

// Canonical checkpoint errors, re-exported so callers can match them with
// errors.Is without importing internal packages.
var (
	// ErrCheckpointMismatch reports a Resume against a journal written under
	// a different seed or config fingerprint (or journal format version).
	ErrCheckpointMismatch = checkpoint.ErrConfigMismatch
	// ErrInjectedCrash is the deterministic crash a CheckpointFault injects;
	// it stands in for a SIGKILL in the resume matrix.
	ErrInjectedCrash = checkpoint.ErrInjectedCrash
)

// The checkpoint stage names Build journals, in plan order.
const (
	ckptStageCrawl      = "crawl"
	ckptStageSeed       = "seed"
	ckptStageOversample = "oversample"
)

// ckptStageAugment names pool i's augmentation checkpoint ("augment-1"...).
func ckptStageAugment(pool int) string { return fmt.Sprintf("augment-%d", pool+1) }

// stagePlan returns the checkpoint stages a Build with this (post-defaults)
// config passes through, in order.
func stagePlan(cfg BuilderConfig) []string {
	plan := []string{ckptStageCrawl, ckptStageSeed}
	for i := range cfg.WildPools {
		plan = append(plan, ckptStageAugment(i))
	}
	if cfg.SyntheticPerPatch > 0 {
		plan = append(plan, ckptStageOversample)
	}
	return plan
}

// CheckpointPlan returns the checkpoint stage names a Build with this config
// would journal, in execution order — the stages a CheckpointFault can
// target.
func CheckpointPlan(cfg BuilderConfig) []string {
	return stagePlan(cfg.withDefaults())
}

// buildFingerprint is the canonical identity of every config field that can
// change build output, computed post-withDefaults so spelled-out and
// defaulted configs fingerprint identically. Workers is deliberately absent:
// output is worker-invariant, so a journal written at -workers 1 resumes at
// -workers 8.
type buildFingerprint struct {
	Seed                 int64   `json:"seed"`
	NVDSize              int     `json:"nvd_size"`
	NonSecuritySize      int     `json:"non_security_size"`
	WildPools            []int   `json:"wild_pools"`
	RoundsPerPool        []int   `json:"rounds_per_pool"`
	SyntheticPerPatch    int     `json:"synthetic_per_patch"`
	FeedNoise            float64 `json:"feed_noise"`
	RatioThreshold       float64 `json:"ratio_threshold"`
	FaultRate            float64 `json:"fault_rate"`
	MaxRetries           int     `json:"max_retries"`
	MaxCrawlFailureRatio float64 `json:"max_crawl_failure_ratio"`
}

func fingerprintOf(cfg BuilderConfig) buildFingerprint {
	return buildFingerprint{
		Seed:                 cfg.Seed,
		NVDSize:              cfg.NVDSize,
		NonSecuritySize:      cfg.NonSecuritySize,
		WildPools:            cfg.WildPools,
		RoundsPerPool:        cfg.RoundsPerPool,
		SyntheticPerPatch:    cfg.SyntheticPerPatch,
		FeedNoise:            cfg.FeedNoise,
		RatioThreshold:       cfg.RatioThreshold,
		FaultRate:            cfg.FaultRate,
		MaxRetries:           cfg.MaxRetries,
		MaxCrawlFailureRatio: cfg.MaxCrawlFailureRatio,
	}
}

// buildState is the complete resumable state of a Build at one stage
// boundary — the journal payload. Each checkpoint holds the cumulative state,
// so resume loads only the last completed stage and never composes deltas.
type buildState struct {
	// Stage names the boundary this state was captured at.
	Stage string `json:"stage"`
	// Dataset is the dataset assembled so far.
	Dataset *Dataset `json:"dataset"`
	// Crawl and Degraded mirror the BuildReport fields, so a resumed build
	// reports the same crawl accounting and degradation verdict (including
	// the quarantine list) as the run that was killed.
	Crawl    nvd.CrawlStats `json:"crawl"`
	Degraded bool           `json:"degraded"`
	// Crawled carries the crawl output until the seed stage folds it into
	// the dataset; later checkpoints journal it empty.
	Crawled []nvd.SavedPatch `json:"crawled,omitempty"`
	// SeedFeatures is the verified-security feature set the next
	// augmentation round searches from.
	SeedFeatures [][]float64 `json:"seed_features,omitempty"`
	// Rounds and Search are the augmentation accounting accumulated so far.
	Rounds []AugmentRound    `json:"rounds,omitempty"`
	Search NearestLinkTotals `json:"search"`
	// HumanVerifications restores the oracle's inspection counter.
	HumanVerifications int `json:"human_verifications"`
	// NextRound is the 1-based global round number the next pool starts at.
	NextRound int `json:"next_round"`
}

// seedFeed populates the NVD service's feed: one entry per generated CVE
// commit plus noiseCount entries without usable patch links (the NVD's
// missing references). The rng draws — a severity per commit, a CVE year per
// noise entry — are consumed even when svc is nil: a resumed build that
// skips the crawl must leave the shared rng in exactly the state an
// uninterrupted build would, or every later rng-consuming stage
// (oversampling) would diverge and break bit-identical resume.
func seedFeed(svc *nvd.Service, baseURL string, nvdCommits []*corpus.LabeledCommit, noiseCount int, rng *rand.Rand) {
	for _, lc := range nvdCommits {
		severity := pickSeverity(rng)
		if svc == nil {
			continue
		}
		svc.AddEntry(nvd.Entry{
			ID:          lc.CVE,
			Description: lc.Commit.Message,
			Published:   lc.Commit.Date,
			Severity:    severity,
			References: []nvd.Reference{{
				URL:  nvd.GitHubCommitURL(baseURL, lc.Commit.Repo, lc.Commit.Hash),
				Tags: []string{"Patch", "Third Party Advisory"},
			}},
		})
	}
	for i := 0; i < noiseCount; i++ {
		year := 2002 + rng.Intn(18)
		if svc == nil {
			continue
		}
		svc.AddEntry(nvd.Entry{
			ID:          fmt.Sprintf("CVE-%d-%05d", year, 90000+i),
			Description: "vulnerability without patch reference",
			References: []nvd.Reference{{
				URL:  "https://advisories.example.com/a/" + fmt.Sprint(i),
				Tags: []string{"Vendor Advisory"},
			}},
		})
	}
}
