#!/bin/sh
# scripts/ci.sh — the merge gate as one script, for environments without
# GitHub Actions. Mirrors .github/workflows/ci.yml and `make ci`: build,
# stock vet, the custom patchdb-lint suite, the test run, the race-enabled
# crash-safety suite, and the fully-verified nearest-link engine smoke
# sweep. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

GO="${GO:-go}"

echo "==> build"
"$GO" build ./...

echo "==> vet"
"$GO" vet ./...

# The lint suite runs twice against one cache directory: the cold run also
# writes the SARIF log CI uploads, the warm run proves the incremental
# driver works — at least 90% of the units must come from the cache, zero
# packages may be type-checked from source, and the warm run must be faster.
LINTTMP="$(mktemp -d)"
trap 'rm -rf "$LINTTMP"' EXIT

echo "==> lint (cold: determinism ctxloop errcanon telemetrysafe atomicwrite logcanon lockdiscipline goroleak closeleak)"
"$GO" build -o "$LINTTMP/patchdb-lint" ./cmd/patchdb-lint
t0=$(date +%s)
"$LINTTMP/patchdb-lint" -cache-dir "$LINTTMP/cache" -stats -sarif lint.sarif ./... 2>"$LINTTMP/cold.stats"
t1=$(date +%s)
cat "$LINTTMP/cold.stats"

echo "==> lint (warm: incremental cache re-run)"
"$LINTTMP/patchdb-lint" -cache-dir "$LINTTMP/cache" -stats ./... 2>"$LINTTMP/warm.stats"
t2=$(date +%s)
cat "$LINTTMP/warm.stats"

units=$(sed -n 's/.*units=\([0-9]*\).*/\1/p' "$LINTTMP/warm.stats")
hits=$(sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p' "$LINTTMP/warm.stats")
loads=$(sed -n 's/.*source_loads=\([0-9]*\).*/\1/p' "$LINTTMP/warm.stats")
if [ -z "$units" ] || [ -z "$hits" ] || [ -z "$loads" ]; then
    echo "ci: could not parse lint -stats output" >&2
    exit 1
fi
if [ $((hits * 100)) -lt $((units * 90)) ]; then
    echo "ci: warm lint run hit the cache for $hits/$units units, want >= 90%" >&2
    exit 1
fi
if [ "$loads" -ne 0 ]; then
    echo "ci: warm lint run type-checked $loads packages from source, want 0" >&2
    exit 1
fi
if [ $((t2 - t1)) -ge $((t1 - t0)) ] && [ $((t1 - t0)) -gt 1 ]; then
    echo "ci: warm lint run ($((t2 - t1))s) not faster than cold ($((t1 - t0))s)" >&2
    exit 1
fi

echo "==> test"
"$GO" test ./...

echo "==> verify-obs (logging determinism + SLO + exemplar + request-ID correlation, race-enabled)"
"$GO" test -race -count=1 -run 'Log|SLO|Exemplar|Exposition|OpenMetrics|Prom|RequestID|Correlation|ChromeTrace|Debug|Healthz|Slow' ./internal/telemetry/ ./internal/store/

echo "==> verify-resume (kill-and-resume crash safety, race-enabled)"
"$GO" test -race -count=1 ./internal/atomicio/ ./internal/checkpoint/ ./internal/experiments/resumebench/

echo "==> bench-smoke (nearest-link engine, fully reference-verified)"
"$GO" run ./cmd/patchdb-bench -only NEARESTLINK -smoke

echo "ci: ok"
