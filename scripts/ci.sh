#!/bin/sh
# scripts/ci.sh — the merge gate as one script, for environments without
# GitHub Actions. Mirrors .github/workflows/ci.yml and `make ci`: build,
# stock vet, the custom patchdb-lint suite, the test run, the race-enabled
# crash-safety suite, and the fully-verified nearest-link engine smoke
# sweep. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

GO="${GO:-go}"

echo "==> build"
"$GO" build ./...

echo "==> vet"
"$GO" vet ./...

echo "==> lint (patchdb-lint: determinism ctxloop errcanon telemetrysafe atomicwrite logcanon)"
"$GO" run ./cmd/patchdb-lint ./...

echo "==> test"
"$GO" test ./...

echo "==> verify-obs (logging determinism + SLO + exemplar + request-ID correlation, race-enabled)"
"$GO" test -race -count=1 -run 'Log|SLO|Exemplar|Exposition|OpenMetrics|Prom|RequestID|Correlation|ChromeTrace|Debug|Healthz|Slow' ./internal/telemetry/ ./internal/store/

echo "==> verify-resume (kill-and-resume crash safety, race-enabled)"
"$GO" test -race -count=1 ./internal/atomicio/ ./internal/checkpoint/ ./internal/experiments/resumebench/

echo "==> bench-smoke (nearest-link engine, fully reference-verified)"
"$GO" run ./cmd/patchdb-bench -only NEARESTLINK -smoke

echo "ci: ok"
