#!/bin/sh
# scripts/ci.sh — the merge gate as one script, for environments without
# GitHub Actions. Mirrors .github/workflows/ci.yml and `make ci`: build,
# stock vet, the custom patchdb-lint suite, and the test run. Exits non-zero
# on the first failure.
set -eu

cd "$(dirname "$0")/.."

GO="${GO:-go}"

echo "==> build"
"$GO" build ./...

echo "==> vet"
"$GO" vet ./...

echo "==> lint (patchdb-lint: determinism ctxloop errcanon telemetrysafe)"
"$GO" run ./cmd/patchdb-lint ./...

echo "==> test"
"$GO" test ./...

echo "ci: ok"
