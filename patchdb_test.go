package patchdb

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

const listing1 = `commit b84c2cab55948a5ee70860779b2640913e3ee1ed

    fix stack underflow

diff --git a/src/bits.c b/src/bits.c
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)
       if (byte[i] & 0x7f)
         break;
     }
-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
   byte[i] &= 0x7f;
   for (j = 4; j >= i; j--)
     {
`

func TestParseAndFeatures(t *testing.T) {
	p, err := ParsePatch(listing1)
	if err != nil {
		t.Fatal(err)
	}
	v := ExtractFeatures(p, 0)
	if len(v) != FeatureDim {
		t.Fatalf("feature dim = %d", len(v))
	}
	names := FeatureNames()
	if len(names) != FeatureDim {
		t.Fatalf("names = %d", len(names))
	}
	if v[0] != 2 { // changed lines
		t.Errorf("changed lines = %v", v[0])
	}
	if !strings.Contains(FormatPatch(p), "diff --git") {
		t.Error("FormatPatch lost structure")
	}
	seq := TokenSequence(p)
	if len(seq) == 0 {
		t.Error("empty token sequence")
	}
	if got := AbstractTokens("x = f(1);"); strings.Join(got, " ") != "VAR = FUNC ( NUM ) ;" {
		t.Errorf("AbstractTokens = %v", got)
	}
}

func TestCategorizeListing1(t *testing.T) {
	p, err := ParsePatch(listing1)
	if err != nil {
		t.Fatal(err)
	}
	// CVE-2019-20912 strengthens a bound-ish conditional.
	got := CategorizePatch(p)
	if got != PatternBoundCheck && got != PatternSanityCheck {
		t.Errorf("pattern = %v, want a check class", got)
	}
}

func TestNearestLinkFacade(t *testing.T) {
	sec := [][]float64{{0, 0}, {5, 5}}
	wild := [][]float64{{0.1, 0}, {5, 5.1}, {99, 99}}
	links, err := NearestLink(context.Background(), sec, wild, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 2 {
		t.Fatalf("links = %d", len(links))
	}
	w, err := FeatureWeights(sec, wild)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 {
		t.Fatalf("weights = %v", w)
	}

	secM, err := MatrixFromRows(sec)
	if err != nil {
		t.Fatal(err)
	}
	wildM, err := MatrixFromRows(wild)
	if err != nil {
		t.Fatal(err)
	}
	var stats NearestLinkStats
	mLinks, err := NearestLinkMatrix(context.Background(), secM, wildM, &NearestLinkOptions{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mLinks, links) {
		t.Fatalf("matrix links = %v, want %v", mLinks, links)
	}
	if stats.HeapPops == 0 || stats.DistanceEvals == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	var totals NearestLinkTotals
	totals.Add(stats)
	if totals.Searches != 1 || totals.String() == "" {
		t.Fatalf("totals = %+v", totals)
	}
}

func TestOversampleFacade(t *testing.T) {
	src := "int f(int a)\n{\n\tif (a > 0)\n\t\treturn 1;\n\treturn 0;\n}\n"
	file, err := ParseC(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := file.IfStmts()
	if len(ifs) != 1 {
		t.Fatalf("ifs = %d", len(ifs))
	}
	out, err := ApplyVariant(src, ifs[0], VariantOneAnd)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "_SYS_ONE && (a > 0)") {
		t.Errorf("variant output:\n%s", out)
	}
}

func TestClassifierFacades(t *testing.T) {
	x := [][]float64{{0, 0}, {0, 1}, {5, 5}, {5, 6}, {0, 0.5}, {5, 5.5}}
	y := []int{0, 0, 1, 1, 0, 1}
	for name, c := range map[string]Classifier{
		"forest":     NewRandomForest(10, 1),
		"tree":       NewDecisionTree(4),
		"reptree":    NewREPTree(1),
		"logistic":   NewLogistic(),
		"sgd":        NewSGD(1),
		"svm":        NewSVM(1),
		"smo":        NewSMO(1),
		"perceptron": NewVotedPerceptron(1),
		"bayes":      NewNaiveBayes(),
		"bayesnet":   NewBayesNet(),
	} {
		if err := c.Fit(x, y); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p := c.Proba([]float64{5, 5}); p < 0 || p > 1 {
			t.Errorf("%s proba = %v", name, p)
		}
	}
	rnn := NewRNN(5, 1)
	if err := rnn.FitTokens([][]string{{"a", "b"}, {"MARKER", "b"}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateFacade(t *testing.T) {
	m := Evaluate([]int{1, 0}, []int{1, 1})
	if m.TP != 1 || m.FN != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if ci := ConfidenceInterval95(0.3, 1000); ci <= 0 {
		t.Errorf("ci = %v", ci)
	}
}

func TestBuildEndToEnd(t *testing.T) {
	ds, report, err := Build(context.Background(), BuilderConfig{
		Seed:              3,
		NVDSize:           60,
		NonSecuritySize:   120,
		WildPools:         []int{800},
		RoundsPerPool:     []int{2},
		SyntheticPerPatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := ds.Stats()
	if stats.NVD == 0 || stats.NVD > 60 {
		t.Errorf("nvd = %d", stats.NVD)
	}
	if stats.Wild == 0 {
		t.Error("no wild security patches discovered")
	}
	if stats.NonSecurity < 120 {
		t.Errorf("non-security = %d", stats.NonSecurity)
	}
	if stats.Synthetic == 0 {
		t.Error("no synthetic patches")
	}
	if report.Crawl.Downloaded == 0 || report.Crawl.Entries <= report.Crawl.WithPatchRefs {
		t.Errorf("crawl stats = %+v (feed noise entries must exist)", report.Crawl)
	}
	if len(report.Rounds) != 2 {
		t.Errorf("rounds = %d", len(report.Rounds))
	}
	if report.HumanVerifications == 0 {
		t.Error("no verification effort recorded")
	}
	// Every record's text must re-parse.
	for _, r := range ds.SecurityPatches()[:5] {
		if _, err := r.Patch(); err != nil {
			t.Errorf("record %s: %v", r.ID, err)
		}
	}
	// All NVD records carry CVE ids; wild ones do not.
	for _, r := range ds.NVD {
		if !strings.HasPrefix(r.CVE, "CVE-") {
			t.Errorf("nvd record without CVE: %+v", r.ID)
		}
	}
	for _, r := range ds.Wild {
		if r.CVE != "" {
			t.Errorf("wild record with CVE %q (silent patches are unindexed)", r.CVE)
		}
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Stats() != stats {
		t.Errorf("round trip stats: %+v vs %+v", ds2.Stats(), stats)
	}

	// File round trip.
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := ds.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	ds3, err := LoadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Stats() != stats {
		t.Error("file round trip changed stats")
	}

	// Distribution covers only security patches.
	dist := ds.Distribution()
	sum := 0
	for _, n := range dist {
		sum += n
	}
	if sum != stats.NVD+stats.Wild {
		t.Errorf("distribution total = %d, want %d", sum, stats.NVD+stats.Wild)
	}
}

// TestBuildDeterministicAcrossWorkers proves the tentpole invariant: the
// built dataset is a pure function of the seed, no matter how many workers
// run the crawl, extraction, and search stages.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	cfg := BuilderConfig{
		Seed:              7,
		NVDSize:           40,
		NonSecuritySize:   80,
		WildPools:         []int{400, 300},
		RoundsPerPool:     []int{2, 1},
		SyntheticPerPatch: 2,
	}
	build := func(workers int) (*Dataset, *BuildReport) {
		t.Helper()
		c := cfg
		c.Workers = workers
		ds, report, err := Build(context.Background(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ds, report
	}
	ds1, rep1 := build(1)
	for _, workers := range []int{3, runtime.GOMAXPROCS(0)} {
		dsN, repN := build(workers)
		if !reflect.DeepEqual(ds1, dsN) {
			t.Fatalf("workers=%d: dataset differs from workers=1", workers)
		}
		if len(rep1.Rounds) != len(repN.Rounds) {
			t.Fatalf("workers=%d: %d rounds vs %d", workers, len(repN.Rounds), len(rep1.Rounds))
		}
		for i := range rep1.Rounds {
			a, b := rep1.Rounds[i], repN.Rounds[i]
			// Wall-clock may differ; every engine counter (evals, pruned,
			// heap pops, rescans) must not.
			a.SearchTime, b.SearchTime = 0, 0
			a.Search.Duration, b.Search.Duration = 0, 0
			if a != b {
				t.Fatalf("workers=%d: round %d accounting differs: %+v vs %+v", workers, i, b, a)
			}
		}
		if rep1.HumanVerifications != repN.HumanVerifications {
			t.Fatalf("workers=%d: verification counts differ", workers)
		}
	}
}

// TestBuildCheckpointedMatchesPlain proves the happy path of the journal:
// enabling CheckpointDir changes nothing about the output, the journal holds
// every planned stage afterwards, and CheckpointPlan names them.
func TestBuildCheckpointedMatchesPlain(t *testing.T) {
	cfg := BuilderConfig{
		Seed:              3,
		NVDSize:           30,
		NonSecuritySize:   60,
		WildPools:         []int{200},
		RoundsPerPool:     []int{1},
		SyntheticPerPatch: 1,
		Workers:           2,
	}
	plain, _, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := cfg
	ckpt.CheckpointDir = t.TempDir()
	journaled, report, err := Build(context.Background(), ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, journaled) {
		t.Error("checkpointed build produced a different dataset than a plain build")
	}
	if report.ResumedFrom != "" {
		t.Errorf("ResumedFrom = %q for a fresh build", report.ResumedFrom)
	}
	wantPlan := []string{"crawl", "seed", "augment-1", "oversample"}
	if got := CheckpointPlan(cfg); !reflect.DeepEqual(got, wantPlan) {
		t.Errorf("CheckpointPlan = %v, want %v", got, wantPlan)
	}
	// The journal now holds every stage: resuming runs nothing and returns
	// the identical dataset.
	resume := ckpt
	resume.Resume = true
	resumed, resumedReport, err := Build(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if resumedReport.ResumedFrom != "oversample" {
		t.Errorf("ResumedFrom = %q, want oversample", resumedReport.ResumedFrom)
	}
	if !reflect.DeepEqual(plain, resumed) {
		t.Error("fully-journaled resume produced a different dataset")
	}
}

func TestBuildFeedNoiseSemantics(t *testing.T) {
	base := BuilderConfig{Seed: 5, NVDSize: 30, NonSecuritySize: 60, WildPools: []int{200}, RoundsPerPool: []int{1}}

	// Negative disables: every feed entry carries a patch reference.
	cfg := base
	cfg.FeedNoise = -1
	_, report, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Crawl.Entries != report.Crawl.WithPatchRefs {
		t.Errorf("FeedNoise=-1: %d entries vs %d with refs, want equal",
			report.Crawl.Entries, report.Crawl.WithPatchRefs)
	}

	// A small explicit value is honored, not coerced to the 0.1 default.
	cfg = base
	cfg.FeedNoise = 0.5
	_, report, err = Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noise := report.Crawl.Entries - report.Crawl.WithPatchRefs; noise != 15 {
		t.Errorf("FeedNoise=0.5: %d noise entries, want 15", noise)
	}
}

func TestBuildRatioThresholdDisabled(t *testing.T) {
	// With the early exit disabled, every scheduled round runs even if a
	// round's ratio falls below any plausible threshold.
	cfg := BuilderConfig{
		Seed: 11, NVDSize: 30, NonSecuritySize: 60,
		WildPools: []int{300}, RoundsPerPool: []int{3},
		RatioThreshold: -1,
	}
	_, report, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rounds) != 3 {
		t.Errorf("rounds = %d, want all 3 with threshold disabled", len(report.Rounds))
	}
}

func TestBuildProgressAndStages(t *testing.T) {
	var mu sync.Mutex
	seen := map[Stage]int{} // max done per stage
	totals := map[Stage]int{}
	cfg := BuilderConfig{
		Seed: 3, NVDSize: 25, NonSecuritySize: 50,
		WildPools: []int{200}, RoundsPerPool: []int{1}, SyntheticPerPatch: 1,
		Progress: func(s Stage, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done > seen[s] {
				seen[s] = done
			}
			totals[s] = total
		},
	}
	_, report, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []Stage{StageCrawl, StageExtract, StageAugment, StageSynthesize} {
		if totals[stage] == 0 {
			t.Errorf("stage %s: no progress reported", stage)
		}
		if seen[stage] != totals[stage] {
			t.Errorf("stage %s: finished at %d/%d", stage, seen[stage], totals[stage])
		}
	}
	// The extract total covers the crawled seed plus the wild pool.
	if want := report.Crawl.Downloaded - report.Crawl.EmptyAfterClean + 200; totals[StageExtract] != want {
		t.Errorf("extract total = %d, want %d", totals[StageExtract], want)
	}
	if len(report.Stages) == 0 {
		t.Fatal("no stage metrics in report")
	}
	got := map[Stage]StageStat{}
	for _, st := range report.Stages {
		got[st.Stage] = st
	}
	if st := got[StageExtract]; st.Items != totals[StageExtract] || st.Duration <= 0 {
		t.Errorf("extract stage stat = %+v", st)
	}
	if st := got[StageSearch]; st.Duration <= 0 {
		t.Errorf("search stage stat = %+v (want per-round search timing)", st)
	}
}

// TestBuildCancelMidway cancels during the extraction stage and verifies the
// pipeline unwinds with a context error instead of finishing.
func TestBuildCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := BuilderConfig{
		Seed: 3, NVDSize: 20, NonSecuritySize: 40,
		WildPools: []int{300}, RoundsPerPool: []int{1},
		Progress: func(s Stage, done, total int) {
			if s == StageExtract && done > 10 {
				cancel()
			}
		},
	}
	_, _, err := Build(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestBuildRoundsPoolsMismatch(t *testing.T) {
	_, _, err := Build(context.Background(), BuilderConfig{
		NVDSize: 5, NonSecuritySize: 10,
		WildPools: []int{50}, RoundsPerPool: []int{1, 2, 3},
	})
	if err == nil || !strings.Contains(err.Error(), "RoundsPerPool") {
		t.Fatalf("err = %v, want RoundsPerPool length error", err)
	}
	// Empty RoundsPerPool still gets the default schedule.
	if _, _, err := Build(context.Background(), BuilderConfig{
		NVDSize: 5, NonSecuritySize: 10, WildPools: []int{50},
	}); err != nil {
		t.Fatalf("empty RoundsPerPool: %v", err)
	}
}

func TestBuildCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Build(ctx, BuilderConfig{NVDSize: 5, NonSecuritySize: 10, WildPools: []int{50}, RoundsPerPool: []int{1}}); err == nil {
		t.Error("Build with canceled context succeeded")
	}
}

func TestComputePatchFacade(t *testing.T) {
	p := ComputePatch("abc", "m", map[string]string{"a.c": "x\n"}, map[string]string{"a.c": "y\n"}, 3)
	if len(p.Files) != 1 {
		t.Fatalf("files = %d", len(p.Files))
	}
}

// chaosCfg is the base config for fault-injected build tests: small world,
// moderate fault rate, the default retry budget.
func chaosCfg() BuilderConfig {
	return BuilderConfig{
		Seed:            11,
		NVDSize:         60,
		NonSecuritySize: 60,
		WildPools:       []int{200},
		RoundsPerPool:   []int{1},
		FaultRate:       0.3,
	}
}

func TestBuildWithFaultsRecovers(t *testing.T) {
	// The acceptance bar: at a 30% transient-failure rate with the default
	// budget the crawl recovers >= 95% of patches; the rest is quarantined
	// with attempt counts and last errors, and the report says Degraded.
	ds, report, err := Build(context.Background(), chaosCfg())
	if err != nil {
		t.Fatal(err)
	}
	crawl := report.Crawl
	if crawl.Retries == 0 {
		t.Error("no retries recorded at a 30% fault rate")
	}
	total := crawl.Downloaded + crawl.Quarantined
	if total != crawl.WithPatchRefs {
		t.Errorf("downloaded %d + quarantined %d != %d patch refs: downloads lost without a trace",
			crawl.Downloaded, crawl.Quarantined, crawl.WithPatchRefs)
	}
	if ratio := float64(crawl.Downloaded) / float64(total); ratio < 0.95 {
		t.Errorf("recovered %.1f%% of patches, want >= 95%%", 100*ratio)
	}
	if report.Degraded != (crawl.Quarantined > 0) {
		t.Errorf("Degraded = %v with %d quarantined", report.Degraded, crawl.Quarantined)
	}
	for i, q := range crawl.Quarantine {
		if q.Attempts != 4 || q.LastError == "" || q.CVE == "" || q.URL == "" {
			t.Errorf("quarantine[%d] incomplete: %+v", i, q)
		}
	}
	if len(ds.NVD) != crawl.Downloaded-crawl.EmptyAfterClean {
		t.Errorf("NVD records = %d, want %d", len(ds.NVD), crawl.Downloaded-crawl.EmptyAfterClean)
	}
}

func TestBuildFailureRatioThreshold(t *testing.T) {
	// Drive the quarantine ratio up with a tight budget, then check both
	// sides of the threshold: a low ceiling fails the build, a negative one
	// (never fail) ships the degraded dataset with the quarantine attached.
	cfg := chaosCfg()
	cfg.FaultRate = 0.5
	cfg.MaxRetries = 1 // two attempts: ~25% of downloads quarantine

	strict := cfg
	strict.MaxCrawlFailureRatio = 0.001
	_, _, err := Build(context.Background(), strict)
	if err == nil || !strings.Contains(err.Error(), "degraded beyond threshold") {
		t.Fatalf("err = %v, want degraded-beyond-threshold", err)
	}

	lenient := cfg
	lenient.MaxCrawlFailureRatio = -1
	_, report, err := Build(context.Background(), lenient)
	if err != nil {
		t.Fatalf("MaxCrawlFailureRatio=-1 must never fail the build: %v", err)
	}
	if !report.Degraded || report.Crawl.Quarantined == 0 {
		t.Errorf("Degraded=%v quarantined=%d, want a visibly degraded build",
			report.Degraded, report.Crawl.Quarantined)
	}
	for i, q := range report.Crawl.Quarantine {
		if q.Attempts != 2 {
			t.Errorf("quarantine[%d].Attempts = %d, want 2", i, q.Attempts)
		}
	}
}

// stripQuarantineBase removes the per-run loopback origin from quarantine
// URLs so reports from two builds (different ephemeral ports) compare equal.
func stripQuarantineBase(report *BuildReport) {
	for i, q := range report.Crawl.Quarantine {
		if j := strings.Index(q.URL, "/github/"); j >= 0 {
			report.Crawl.Quarantine[i].URL = q.URL[j:]
		}
	}
}

func TestBuildDeterministicUnderFaults(t *testing.T) {
	// The determinism contract extends to chaos: same Seed + fault config
	// means a byte-identical dataset and quarantine report at any worker
	// count. BreakerTrips is timing-dependent and excluded.
	cfg := chaosCfg()
	cfg.FaultRate = 0.5
	cfg.MaxRetries = 1
	cfg.MaxCrawlFailureRatio = -1

	build := func(workers int) (*Dataset, *BuildReport) {
		t.Helper()
		c := cfg
		c.Workers = workers
		ds, report, err := Build(context.Background(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		stripQuarantineBase(report)
		return ds, report
	}
	ds1, rep1 := build(1)
	dsN, repN := build(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(ds1, dsN) {
		t.Fatal("dataset differs across worker counts under faults")
	}
	if rep1.Crawl.Quarantined == 0 {
		t.Error("test too weak: nothing quarantined")
	}
	c1, cN := rep1.Crawl, repN.Crawl
	if c1.Downloaded != cN.Downloaded || c1.Retries != cN.Retries || c1.Quarantined != cN.Quarantined {
		t.Fatalf("crawl stats differ: %+v vs %+v", c1, cN)
	}
	if !reflect.DeepEqual(c1.Quarantine, cN.Quarantine) {
		t.Fatalf("quarantine reports differ:\n%+v\nvs\n%+v", c1.Quarantine, cN.Quarantine)
	}
}
