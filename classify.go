package patchdb

import (
	"patchdb/internal/ml"
	"patchdb/internal/ml/bayes"
	"patchdb/internal/ml/linear"
	"patchdb/internal/ml/neural"
	"patchdb/internal/ml/tree"
)

// Label values for the security patch identification task.
const (
	// NonSecurity is the negative class label.
	NonSecurity = ml.NonSecurity
	// Security is the positive class label.
	Security = ml.Security
)

// Classifier is a binary classifier over feature vectors.
type Classifier = ml.Classifier

// Metrics summarizes binary classification quality (precision, recall, F1,
// accuracy, confusion counts).
type Metrics = ml.Metrics

// Evaluate scores predictions against ground truth.
func Evaluate(pred, truth []int) Metrics { return ml.Evaluate(pred, truth) }

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval for a proportion p over n samples (the ±x% of Table III).
func ConfidenceInterval95(p float64, n int) float64 {
	return ml.ConfidenceInterval95(p, n)
}

// NewRandomForest returns the random forest used throughout the paper's
// evaluation (bagged CART trees with sqrt-feature subsampling).
func NewRandomForest(trees int, seed int64) Classifier {
	return &tree.Forest{Trees: trees, Seed: seed}
}

// NewDecisionTree returns a single CART decision tree (the J48 stand-in).
func NewDecisionTree(maxDepth int) Classifier {
	return &tree.Tree{MaxDepth: maxDepth, MinLeaf: 2}
}

// NewREPTree returns a reduced-error-pruning tree.
func NewREPTree(seed int64) Classifier { return &tree.REPTree{Seed: seed} }

// NewLogistic returns an L2-regularized logistic regression.
func NewLogistic() Classifier { return &linear.Logistic{} }

// NewSGD returns a stochastic-gradient-descent logistic classifier.
func NewSGD(seed int64) Classifier { return &linear.SGD{Seed: seed} }

// NewSVM returns a linear SVM trained with Pegasos.
func NewSVM(seed int64) Classifier { return &linear.SVM{Seed: seed} }

// NewSMO returns a dual-form linear SVM trained with sequential minimal
// optimization.
func NewSMO(seed int64) Classifier { return &linear.SMO{Seed: seed} }

// NewVotedPerceptron returns a voted perceptron.
func NewVotedPerceptron(seed int64) Classifier { return &linear.VotedPerceptron{Seed: seed} }

// NewNaiveBayes returns a Gaussian naive Bayes classifier.
func NewNaiveBayes() Classifier { return &bayes.GaussianNB{} }

// NewBayesNet returns a tree-augmented naive Bayes network (Chow-Liu
// structure over binned features).
func NewBayesNet() Classifier { return &bayes.TAN{} }

// RNN is the recurrent token-sequence classifier of the paper's evaluation.
type RNN = neural.RNN

// NewRNN returns an Elman RNN sequence classifier. Train it with FitTokens
// on TokenSequence outputs.
func NewRNN(epochs int, seed int64) *RNN {
	return &neural.RNN{Epochs: epochs, Seed: seed}
}
