// Package patchdb is a Go implementation of PatchDB ("PatchDB: A
// Large-Scale Security Patch Dataset", DSN 2021): a pipeline for building
// large security-patch datasets from an NVD-style vulnerability feed and
// git repositories in the wild.
//
// The package exposes the paper's three pillars:
//
//   - Feature extraction and the nearest link search algorithm that selects
//     the most promising security patch candidates from an unlabeled commit
//     pool (Sec. III-B, Algorithm 1): see ExtractFeatures and NearestLink.
//   - Source-level patch oversampling via eight control-flow variant
//     templates (Sec. III-C, Fig. 5): see Oversampler and ApplyVariant.
//   - Dataset assembly and learning-based security patch identification
//     (Sec. IV): see Builder, Dataset, and the classifiers returned by
//     NewRandomForest / NewRNN.
//
// Every substrate the paper depends on — a git-format diff parser, a C/C++
// lexer and AST parser, an NVD feed crawler, a git-like object store, ML
// models (random forest, linear models, Bayes, an Elman RNN) — is
// implemented in this module's internal packages and surfaced here as
// needed.
package patchdb

import (
	"patchdb/internal/categorize"
	"patchdb/internal/corpus"
	"patchdb/internal/ctoken"
	"patchdb/internal/diff"
	"patchdb/internal/features"
)

// Patch is a parsed git-style patch (commit metadata plus per-file hunks).
type Patch = diff.Patch

// FileDiff is a single file's hunks inside a Patch.
type FileDiff = diff.FileDiff

// Hunk is one consecutive change region with context.
type Hunk = diff.Hunk

// LineKind classifies a hunk line.
type LineKind = diff.LineKind

// Hunk line kinds.
const (
	LineContext = diff.Context
	LineRemoved = diff.Removed
	LineAdded   = diff.Added
)

// ParsePatch parses git patch text (e.g. a GitHub .patch download).
func ParsePatch(text string) (*Patch, error) { return diff.Parse(text) }

// FormatPatch renders a patch back to git patch text.
func FormatPatch(p *Patch) string { return diff.Format(p) }

// ComputePatch derives a patch from before/after file snapshots
// (path -> content), with the given number of diff context lines.
func ComputePatch(commit, message string, before, after map[string]string, contextLines int) *Patch {
	return diff.ComputePatch(commit, message, before, after, contextLines)
}

// FeatureDim is the dimensionality of the syntactic feature space
// (Table I: 60 features).
const FeatureDim = features.Dim

// ExtractFeatures computes the 60-dimensional syntactic feature vector of
// Table I for a patch. totalFiles is the pre-cleaning file count of the
// commit (0 if unknown).
func ExtractFeatures(p *Patch, totalFiles int) []float64 {
	return features.Extract(p, totalFiles)
}

// FeatureNames returns the label of each feature dimension in Table I
// order.
func FeatureNames() []string { return features.Names() }

// TokenSequence flattens a patch into the abstracted token stream consumed
// by the RNN classifier.
func TokenSequence(p *Patch) []string { return features.TokenSequence(p) }

// AbstractTokens lexes a single line of C/C++ code and returns the
// abstracted token strings (identifiers -> VAR/FUNC, literals -> NUM/STR).
func AbstractTokens(line string) []string {
	return ctoken.Abstract(ctoken.LexLine(line))
}

// Pattern is one of the 12 security patch pattern classes of Table V.
type Pattern = corpus.Pattern

// The 12 pattern classes (Table V).
const (
	PatternBoundCheck  = corpus.PatternBoundCheck
	PatternNullCheck   = corpus.PatternNullCheck
	PatternSanityCheck = corpus.PatternSanityCheck
	PatternVarDef      = corpus.PatternVarDef
	PatternVarValue    = corpus.PatternVarValue
	PatternFuncDecl    = corpus.PatternFuncDecl
	PatternFuncParam   = corpus.PatternFuncParam
	PatternFuncCall    = corpus.PatternFuncCall
	PatternJump        = corpus.PatternJump
	PatternMove        = corpus.PatternMove
	PatternRedesign    = corpus.PatternRedesign
	PatternOther       = corpus.PatternOther
)

// NumPatterns is the number of security patch pattern classes.
const NumPatterns = corpus.NumPatterns

// CategorizePatch assigns a security patch to a pattern class using
// syntactic rules over its code changes (the mechanical counterpart of the
// paper's manual classification).
func CategorizePatch(p *Patch) Pattern { return categorize.Categorize(p) }
