GO ?= go

.PHONY: build test vet race bench verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race instrumentation slows the model-training tests ~10x, so the tier
# needs more than go test's default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run XXX -bench 'BenchmarkExtractStage|BenchmarkBuild' -benchtime 3x .

# verify is the full pre-merge tier: static analysis plus the race-enabled
# test suite (which subsumes the plain test run).
verify: vet race

clean:
	$(GO) clean ./...
