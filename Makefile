GO ?= go

.PHONY: build test vet lint race bench bench-nearestlink bench-smoke bench-serve verify verify-chaos verify-telemetry verify-serve verify-resume verify-obs ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet is the stock static-analysis pass; its stricter analyzers that matter
# here (-copylocks, -loopclosure) are on by default in go vet.
vet:
	$(GO) vet ./...

# lint runs patchdb's custom analyzer suite (see internal/analysis and
# cmd/patchdb-lint): determinism (no wall clocks / global rand — direct or
# transitive via call-graph facts — and no ordered map iteration in the
# deterministic build packages), ctxloop (worker loops honor ctx
# cancellation), errcanon (errors.Is + %w for canonical errors),
# telemetrysafe (nil-guarded *telemetry.Hub field access), atomicwrite
# (artifact files written via internal/atomicio, never direct os writes),
# logcanon (structured logging in server/pipeline packages), lockdiscipline
# (no mutex copies, Lock pairs with Unlock on all paths, no lock held across
# a blocking channel op), goroleak (goroutines tie their exit to a
# context/WaitGroup/channel), and closeleak (files, response bodies, and
# snapshot handles closed on every path). Packages are analyzed concurrently
# and results cached under .lintcache/ — a warm run re-checks nothing (use
# -no-cache or `rm -rf .lintcache` to force). Suppress an intentional
# finding with `//lint:ignore <check> <reason>`.
lint:
	$(GO) run ./cmd/patchdb-lint ./...

# Race instrumentation slows the model-training tests ~10x, so the tier
# needs more than go test's default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run XXX -bench 'BenchmarkExtractStage|BenchmarkBuild' -benchtime 3x .

# bench-nearestlink sweeps the nearest-link engine up to 2k seeds x 200k
# wild commits and writes BENCH_nearestlink.json (ns/op, distance evals,
# pruned fraction, rescans, reference speedup) — the perf trajectory for the
# hottest kernel in the repo.
bench-nearestlink:
	$(GO) run ./cmd/patchdb-bench -only NEARESTLINK

# bench-smoke is the CI-gate form of the engine sweep: one tiny shape
# (50 seeds x 2000 wild commits, 60 dims) across worker counts, every link of
# every run compared bit-for-bit against the reference implementation plus a
# brute-force spot-check of all seeds. Seconds of wall-clock, no artifact
# write — it gates correctness, not throughput.
bench-smoke:
	$(GO) run ./cmd/patchdb-bench -only NEARESTLINK -smoke

# bench-serve drives the patchdb-serve query API over real loopback HTTP at
# 1/4/16 store shards, cold vs. warm snapshot, and writes BENCH_serve.json
# (p50/p99 latency, QPS) — the perf trajectory for the serving layer.
bench-serve:
	$(GO) run ./cmd/patchdb-bench -only SERVE

# verify-chaos runs the fault-injection suite under the race detector: the
# injected fault classes, the retry/breaker machinery, and the end-to-end
# chaos tests of the crawler and builder.
verify-chaos:
	$(GO) test -race -count=1 ./internal/faults/ ./internal/retry/
	$(GO) test -race -count=1 -run 'Chaos|Fault|PatchTooLarge|Serve' ./internal/nvd/ .

# verify-telemetry runs the observability suites under the race detector:
# the metrics registry / tracer / exporters and the stage-metrics adapter.
verify-telemetry:
	$(GO) test -race -count=1 ./internal/telemetry/ ./internal/pipeline/

# verify-serve runs the serving-layer suite under the race detector: the
# snapshot-swap isolation test (readers during reload see old-or-new, never
# a mix), shard invariance, cursor pagination, and the HTTP handlers.
verify-serve:
	$(GO) test -race -count=1 ./internal/store/ ./internal/experiments/servebench/

# verify-resume runs the crash-safety suite under the race detector: the
# checkpoint journal and atomic-write primitives, the crawled-patch
# round-trip, and the kill-and-resume chaos harness (every stage boundary x
# worker counts 1/2/8, both fault placements, cross-worker resume — resumed
# output must be bit-identical to an uninterrupted build).
verify-resume:
	$(GO) test -race -count=1 ./internal/atomicio/ ./internal/checkpoint/ ./internal/experiments/resumebench/

# verify-obs runs the observability-correlation suite under the race
# detector: structured-logging determinism, SLO burn-rate verdicts (window
# edges, zero traffic, worker invariance), exposition goldens with
# exemplars, Chrome trace export, and the end-to-end request-ID correlation
# test (one slow request -> header + log + span + exemplar, one trace ID).
verify-obs:
	$(GO) test -race -count=1 -run 'Log|SLO|Exemplar|Exposition|OpenMetrics|Prom|RequestID|Correlation|ChromeTrace|Debug|Healthz|Slow' ./internal/telemetry/ ./internal/store/

# verify is the full pre-merge tier: verify = vet + lint + chaos +
# telemetry + obs + serve + resume + race — stock and custom static
# analysis, the fault-injection, telemetry, observability-correlation,
# serving, and crash-safety suites, and the race-enabled test suite (which
# subsumes the plain test run).
verify: vet lint verify-chaos verify-telemetry verify-obs verify-serve verify-resume race

# ci is the fast merge gate mirrored by .github/workflows/ci.yml and
# scripts/ci.sh: build, both static-analysis tiers, the plain test run, the
# race-enabled observability-correlation and crash-safety suites, and the
# fully-verified engine smoke sweep.
ci: build vet lint test verify-obs verify-resume bench-smoke

clean:
	$(GO) clean ./...
