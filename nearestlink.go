package patchdb

import (
	"context"
	"math/rand"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/baselines"
	"patchdb/internal/core/nearestlink"
	"patchdb/internal/ml"
)

// Link pairs one verified security patch with its selected wild candidate.
type Link = nearestlink.Link

// NearestLinkOptions tunes the search.
type NearestLinkOptions = nearestlink.Options

// NearestLinkStats is the engine accounting of one search: problem
// dimensions, distance evaluations, pruned fraction, heap pops, second-best
// collision hits, rescans, and wall-clock time.
type NearestLinkStats = nearestlink.Stats

// NearestLinkTotals aggregates NearestLinkStats across searches (e.g. all
// augmentation rounds of a Build).
type NearestLinkTotals = nearestlink.Totals

// Matrix is the engine's flat, row-major feature matrix: one contiguous
// float64 allocation plus a stride, with zero-copy row views. Build one
// with NewMatrix/MatrixFromRows and search it via NearestLinkMatrix to skip
// the per-call flattening of the [][]float64 entry points.
type Matrix = nearestlink.Matrix

// NewMatrix allocates a zeroed rows×cols feature matrix.
func NewMatrix(rows, cols int) *Matrix { return nearestlink.NewMatrix(rows, cols) }

// MatrixFromRows copies feature rows into a flat Matrix, validating that
// all rows share one dimensionality.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	return nearestlink.MatrixFromRows(rows)
}

// NearestLink runs the paper's Algorithm 1: given the feature rows of
// verified security patches and of unlabeled wild patches, it selects one
// distinct wild candidate per security patch, greedily minimizing the total
// weighted Euclidean link distance. Feature weighting (max-abs
// normalization) is applied internally. ctx is checked between scan chunks
// and during assignment; cancellation aborts the search with a wrapped
// context error.
func NearestLink(ctx context.Context, security, wild [][]float64, opts *NearestLinkOptions) ([]Link, error) {
	return nearestlink.Search(ctx, security, wild, opts)
}

// NearestLinkMatrix is NearestLink over pre-flattened matrices; the inputs
// are never mutated.
func NearestLinkMatrix(ctx context.Context, security, wild *Matrix, opts *NearestLinkOptions) ([]Link, error) {
	return nearestlink.SearchMatrix(ctx, security, wild, opts)
}

// FeatureWeights computes the per-dimension max-abs weights w_j = 1/max|a_j|
// used to normalize the feature space (Sec. III-B-2). Ragged rows return a
// wrapped error instead of panicking.
func FeatureWeights(sets ...[][]float64) ([]float64, error) {
	return nearestlink.Weights(sets...)
}

// AugmentItem is one unlabeled wild patch in an augmentation pool.
type AugmentItem = augment.Item

// AugmentConfig tunes the human-in-the-loop augmentation driver.
type AugmentConfig = augment.Config

// AugmentRound is one round's accounting (a Table II row), including the
// round's nearest-link engine stats.
type AugmentRound = augment.Round

// AugmentResult is the outcome of an augmentation run.
type AugmentResult = augment.Result

// Verifier is the manual-verification interface consumed by Augment; wire
// it to your labeling process (the paper uses three cross-checking security
// researchers).
type Verifier = augment.Verifier

// Augment runs the dataset augmentation loop of Fig. 2 over one unlabeled
// pool: nearest-link candidate selection, verification, and loop judgment.
// startRound numbers the produced rounds. ctx is checked between rounds,
// inside each round's nearest link search, and between verifications;
// cancellation aborts the run with a wrapped context error.
func Augment(ctx context.Context, seed [][]float64, pool []AugmentItem, v Verifier, startRound int, cfg AugmentConfig) (*AugmentResult, error) {
	return augment.Run(ctx, seed, pool, v, startRound, cfg)
}

// BruteForceSelect is the baseline that samples the pool uniformly
// (Table III, row 1).
func BruteForceSelect(pool []AugmentItem, sampleSize int, rng *rand.Rand) []int {
	return baselines.BruteForce(pool, sampleSize, rng)
}

// PseudoLabelSelect ranks the pool by the confidence of a Random Forest
// trained on the labeled seed and returns the top-k indices (Table III,
// row 2).
func PseudoLabelSelect(trainX [][]float64, trainY []int, pool []AugmentItem, k int, seed int64) ([]int, error) {
	return baselines.PseudoLabeling(&ml.Dataset{X: trainX, Y: trainY}, pool, k, seed)
}

// UncertaintySelect returns the pool indices that all ten ensemble
// classifiers agree are security patches (Table III, row 3).
func UncertaintySelect(trainX [][]float64, trainY []int, pool []AugmentItem, seed int64) ([]int, error) {
	return baselines.Uncertainty(&ml.Dataset{X: trainX, Y: trainY}, pool, seed)
}
