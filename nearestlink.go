package patchdb

import (
	"context"
	"math/rand"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/baselines"
	"patchdb/internal/core/nearestlink"
	"patchdb/internal/ml"
)

// Link pairs one verified security patch with its selected wild candidate.
type Link = nearestlink.Link

// NearestLinkOptions tunes the search.
type NearestLinkOptions = nearestlink.Options

// NearestLink runs the paper's Algorithm 1: given the feature rows of
// verified security patches and of unlabeled wild patches, it selects one
// distinct wild candidate per security patch, greedily minimizing the total
// weighted Euclidean link distance. Feature weighting (max-abs
// normalization) is applied internally.
func NearestLink(security, wild [][]float64, opts *NearestLinkOptions) ([]Link, error) {
	return nearestlink.Search(security, wild, opts)
}

// FeatureWeights computes the per-dimension max-abs weights w_j = 1/max|a_j|
// used to normalize the feature space (Sec. III-B-2).
func FeatureWeights(sets ...[][]float64) []float64 {
	return nearestlink.Weights(sets...)
}

// AugmentItem is one unlabeled wild patch in an augmentation pool.
type AugmentItem = augment.Item

// AugmentConfig tunes the human-in-the-loop augmentation driver.
type AugmentConfig = augment.Config

// AugmentRound is one round's accounting (a Table II row).
type AugmentRound = augment.Round

// AugmentResult is the outcome of an augmentation run.
type AugmentResult = augment.Result

// Verifier is the manual-verification interface consumed by Augment; wire
// it to your labeling process (the paper uses three cross-checking security
// researchers).
type Verifier = augment.Verifier

// Augment runs the dataset augmentation loop of Fig. 2 over one unlabeled
// pool: nearest-link candidate selection, verification, and loop judgment.
// startRound numbers the produced rounds. ctx is checked between rounds and
// between verifications; cancellation aborts the run with a wrapped context
// error.
func Augment(ctx context.Context, seed [][]float64, pool []AugmentItem, v Verifier, startRound int, cfg AugmentConfig) (*AugmentResult, error) {
	return augment.Run(ctx, seed, pool, v, startRound, cfg)
}

// BruteForceSelect is the baseline that samples the pool uniformly
// (Table III, row 1).
func BruteForceSelect(pool []AugmentItem, sampleSize int, rng *rand.Rand) []int {
	return baselines.BruteForce(pool, sampleSize, rng)
}

// PseudoLabelSelect ranks the pool by the confidence of a Random Forest
// trained on the labeled seed and returns the top-k indices (Table III,
// row 2).
func PseudoLabelSelect(trainX [][]float64, trainY []int, pool []AugmentItem, k int, seed int64) ([]int, error) {
	return baselines.PseudoLabeling(&ml.Dataset{X: trainX, Y: trainY}, pool, k, seed)
}

// UncertaintySelect returns the pool indices that all ten ensemble
// classifiers agree are security patches (Table III, row 3).
func UncertaintySelect(trainX [][]float64, trainY []int, pool []AugmentItem, seed int64) ([]int, error) {
	return baselines.Uncertainty(&ml.Dataset{X: trainX, Y: trainY}, pool, seed)
}
