package patchdb

// Benchmark harness: one benchmark per data-bearing table and figure of the
// paper (Tables II-VI, Figure 6), ablation benchmarks for the design choices
// DESIGN.md calls out, and micro-benchmarks for the hot paths (feature
// extraction, Levenshtein, Algorithm 1, diff computation, model training).
//
// Table/figure benchmarks run the full experiment at the small scale and
// report the paper-shaped output once via b.Log; run them individually with
//
//	go test -bench=BenchmarkTableII -benchmem
//
// and regenerate everything at the default (1/10-paper) scale with
//
//	go run ./cmd/patchdb-bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"patchdb/internal/core/augment"
	"patchdb/internal/core/nearestlink"
	"patchdb/internal/corpus"
	"patchdb/internal/diff"
	"patchdb/internal/experiments"
	"patchdb/internal/features"
	"patchdb/internal/lev"
	"patchdb/internal/ml"
	"patchdb/internal/ml/neural"
	"patchdb/internal/ml/tree"
	"patchdb/internal/oracle"
	"patchdb/internal/pipeline"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func sharedBenchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() { benchLab = experiments.NewLab(experiments.SmallScale) })
	return benchLab
}

// BenchmarkTableII regenerates the five-round augmentation accounting
// (search range, candidates, verified security patches, ratio).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		tab, err := lab.RunTableII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkTableIII regenerates the augmentation-method comparison (brute
// force vs pseudo labeling vs uncertainty-based labeling vs nearest link).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		tab, err := lab.RunTableIII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkTableIV regenerates the synthetic-patch study (RNN performance
// with and without source-level oversampling).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		tab, err := lab.RunTableIV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkTableV regenerates the PatchDB pattern-class distribution.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		tab, err := lab.RunTableV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// BenchmarkFigure6 regenerates the NVD-vs-wild type-distribution contrast.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		fig, err := lab.RunFigure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + fig.String())
		}
	}
}

// BenchmarkTableVI regenerates the dataset-quality grid (2 training sets x
// 2 algorithms x 2 test sets).
func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.SmallScale)
		tab, err := lab.RunTableVI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationNormalization contrasts nearest-link hit ratios with and
// without the paper's max-abs feature weighting (Sec. III-B-2).
func BenchmarkAblationNormalization(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	pool := lab.Items(lab.SetI)
	wildX := make([][]float64, len(pool))
	for i, it := range pool {
		wildX[i] = it.Features
	}
	hitRatio := func(links []nearestlink.Link) float64 {
		hits := 0
		for _, l := range links {
			if lc, ok := lab.Lookup(pool[l.Wild].ID); ok && lc.Security {
				hits++
			}
		}
		return float64(hits) / float64(len(links))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normed, err := nearestlink.Search(context.Background(), seedX, wildX, nil)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := nearestlink.Search(context.Background(), seedX, wildX, &nearestlink.Options{DisableNormalization: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("hit ratio with weighting: %.1f%%, without: %.1f%%",
				100*hitRatio(normed), 100*hitRatio(raw))
		}
	}
}

// BenchmarkAblationKNNVsNearestLink contrasts Algorithm 1's one-to-one links
// against plain 1-NN selection (which may pick one wild patch many times —
// the contrast the paper draws in Sec. III-B-3).
func BenchmarkAblationKNNVsNearestLink(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	pool := lab.Items(lab.SetI)
	wildX := make([][]float64, len(pool))
	for i, it := range pool {
		wildX[i] = it.Features
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links, err := nearestlink.Search(context.Background(), seedX, wildX, nil)
		if err != nil {
			b.Fatal(err)
		}
		knn, err := nearestlink.KNNSelect(context.Background(), seedX, wildX, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("nearest link candidates: %d (one per seed); KNN distinct candidates: %d",
				len(links), len(knn))
		}
	}
}

// BenchmarkAblationSearchRange sweeps the unlabeled pool size and reports
// the round-1 hit ratio — the paper's "a larger search range enables a
// higher ratio" observation.
func BenchmarkAblationSearchRange(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	full := lab.Items(lab.SetII)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var report []string
		for _, size := range []int{len(full) / 4, len(full) / 2, len(full)} {
			pool := full[:size]
			wildX := make([][]float64, len(pool))
			for j, it := range pool {
				wildX[j] = it.Features
			}
			links, err := nearestlink.Search(context.Background(), seedX, wildX, nil)
			if err != nil {
				b.Fatal(err)
			}
			hits := 0
			for _, l := range links {
				if lc, ok := lab.Lookup(pool[l.Wild].ID); ok && lc.Security {
					hits++
				}
			}
			report = append(report, sprintfRatio(size, hits, len(links)))
		}
		if i == 0 {
			b.Log(strings.Join(report, "; "))
		}
	}
}

func sprintfRatio(size, hits, total int) string {
	return fmt.Sprintf("range=%d ratio=%d%%", size, 100*hits/total)
}

// BenchmarkAblationVariantTemplates contrasts oversampling with all eight
// templates against a flag-family-only subset.
func BenchmarkAblationVariantTemplates(b *testing.B) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 99})
	commits := gen.GenerateNVD(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := &Oversampler{}
		flagOnly := &Oversampler{Variants: []Variant{VariantFlagSet, VariantFlagClear}}
		var nAll, nFlag int
		for _, lc := range commits {
			s1, err := all.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After)
			if err != nil {
				b.Fatal(err)
			}
			s2, err := flagOnly.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After)
			if err != nil {
				b.Fatal(err)
			}
			nAll += len(s1)
			nFlag += len(s2)
		}
		if i == 0 {
			b.Logf("synthetics from 100 patches: all templates=%d, flag-only=%d", nAll, nFlag)
		}
	}
}

// --- Micro-benchmarks ----------------------------------------------------

func benchPatch(b *testing.B) *diff.Patch {
	b.Helper()
	gen := corpus.NewGenerator(corpus.Config{Seed: 4})
	return gen.GenerateNVD(1)[0].Commit.Patch()
}

// BenchmarkFeatureExtraction measures the 60-feature extractor on one
// generated security patch.
func BenchmarkFeatureExtraction(b *testing.B) {
	p := benchPatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = features.Extract(p, 0)
	}
}

// benchExtractStage measures the Build pipeline's per-commit feature
// extraction stage over a wild pool at a given worker count — the
// before/after contrast for the concurrent pipeline (serial = Workers 1).
func benchExtractStage(b *testing.B, workers int) {
	b.Helper()
	gen := corpus.NewGenerator(corpus.Config{Seed: 11})
	pool := gen.GenerateWild(2000)
	// Warm the per-commit diff cache so the benchmark isolates extraction.
	for _, lc := range pool {
		lc.Commit.Patch()
	}
	notify := pipeline.NewNotifier(pipeline.StageExtract, len(pool), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := mapConcurrently(context.Background(), len(pool), workers, notify,
			func(j int) []float64 { return features.Extract(pool[j].Commit.Patch(), 0) })
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(pool) {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkExtractStageSerial is the pre-worker-pool baseline.
func BenchmarkExtractStageSerial(b *testing.B) { benchExtractStage(b, 1) }

// BenchmarkExtractStageParallel runs the same workload on GOMAXPROCS
// workers; compare against BenchmarkExtractStageSerial for the stage
// speedup.
func BenchmarkExtractStageParallel(b *testing.B) { benchExtractStage(b, runtime.GOMAXPROCS(0)) }

// benchBuildPipeline measures the whole Build at a small scale for a worker
// count (crawl + extraction + search + augmentation, no synthesis).
func benchBuildPipeline(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		_, _, err := Build(context.Background(), BuilderConfig{
			Seed: 13, NVDSize: 60, NonSecuritySize: 120,
			WildPools: []int{1500}, RoundsPerPool: []int{2},
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSerial runs the end-to-end pipeline single-worker.
func BenchmarkBuildSerial(b *testing.B) { benchBuildPipeline(b, 1) }

// BenchmarkBuildParallel runs the end-to-end pipeline at GOMAXPROCS workers.
func BenchmarkBuildParallel(b *testing.B) { benchBuildPipeline(b, runtime.GOMAXPROCS(0)) }

// BenchmarkTokenSequence measures RNN input construction.
func BenchmarkTokenSequence(b *testing.B) {
	p := benchPatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = features.TokenSequence(p)
	}
}

// BenchmarkLevenshtein measures token-level edit distance on typical hunk
// sizes.
func BenchmarkLevenshtein(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) []string {
		out := make([]string, n)
		words := []string{"if", "(", "VAR", ")", "NUM", ";", "FUNC", "&&"}
		for i := range out {
			out[i] = words[rng.Intn(len(words))]
		}
		return out
	}
	x, y := mk(60), mk(60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lev.Distance(x, y)
	}
}

// BenchmarkNearestLinkSearch measures Algorithm 1 on a 120x1200 problem.
func BenchmarkNearestLinkSearch(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	pool := lab.Items(lab.SetI)
	wildX := make([][]float64, len(pool))
	for i, it := range pool {
		wildX[i] = it.Features
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nearestlink.Search(context.Background(), seedX, wildX, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchNearestLinkRows generates feature-like rows for the large search
// benchmarks, matching the shape of the real 60-dim extractor output: sparse
// non-negative counts, per-dimension scale variation, and a long-tailed
// per-row commit-size factor (big commits have uniformly large counts) — the
// spread the engine's norm bound prunes against in practice.
func benchNearestLinkRows(rng *rand.Rand, n, d int) [][]float64 {
	scale := make([]float64, d)
	for j := range scale {
		scale[j] = 1 + 9*rng.Float64()
	}
	out := make([][]float64, n)
	for i := range out {
		size := math.Exp(1.2 * rng.NormFloat64())
		row := make([]float64, d)
		for j := range row {
			if rng.Float64() < 0.5 {
				continue
			}
			row[j] = float64(int(rng.ExpFloat64() * scale[j] * size))
		}
		out[i] = row
	}
	return out
}

var benchLargeNL struct {
	once       sync.Once
	seed, wild [][]float64
}

func benchLargeNearestLinkInputs() ([][]float64, [][]float64) {
	benchLargeNL.once.Do(func() {
		rng := rand.New(rand.NewSource(17))
		benchLargeNL.seed = benchNearestLinkRows(rng, 1000, 60)
		benchLargeNL.wild = benchNearestLinkRows(rng, 100_000, 60)
	})
	return benchLargeNL.seed, benchLargeNL.wild
}

// BenchmarkNearestLinkSearchLarge measures the engine on a 1k x 100k x 60
// instance — the scale the acceptance criterion targets. Compare against
// BenchmarkNearestLinkReferenceLarge (same inputs, same worker count) for
// the engine-vs-reference speedup.
func BenchmarkNearestLinkSearchLarge(b *testing.B) {
	seedX, wildX := benchLargeNearestLinkInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nearestlink.Search(context.Background(), seedX, wildX, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearestLinkReference runs the retained pre-engine implementation
// on the 120x1200 instance of BenchmarkNearestLinkSearch.
func BenchmarkNearestLinkReference(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	pool := lab.Items(lab.SetI)
	wildX := make([][]float64, len(pool))
	for i, it := range pool {
		wildX[i] = it.Features
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nearestlink.ReferenceSearch(seedX, wildX, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearestLinkReferenceLarge is the pre-engine implementation on the
// 1k x 100k instance — the denominator of the large-search speedup.
func BenchmarkNearestLinkReferenceLarge(b *testing.B) {
	seedX, wildX := benchLargeNearestLinkInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nearestlink.ReferenceSearch(seedX, wildX, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiffCompute measures Myers diff on generated file pairs.
func BenchmarkDiffCompute(b *testing.B) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 6})
	lc := gen.GenerateNVD(1)[0]
	var path, before, after string
	for p, v := range lc.Commit.Before {
		path, before = p, v
	}
	after = lc.Commit.After[path]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = diff.Compute(path, before, after, 3)
	}
}

// BenchmarkPatchParse measures git patch parsing.
func BenchmarkPatchParse(b *testing.B) {
	text := diff.Format(benchPatch(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diff.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOversample measures full variant synthesis for one patch.
func BenchmarkOversample(b *testing.B) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 7})
	lc := gen.SecurityCommitOfPattern(corpus.PatternBoundCheck)
	ov := &Oversampler{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ov.Synthesize(lc.Commit.Hash, lc.Commit.Before, lc.Commit.After); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomForestTrain measures forest training on the small lab's
// labeled data.
func BenchmarkRandomForestTrain(b *testing.B) {
	lab := sharedBenchLab(b)
	ds := &ml.Dataset{}
	for _, lc := range lab.NVD {
		ds.Append(lab.Features(lc), ml.Security, "")
	}
	for _, lc := range lab.NonSec {
		ds.Append(lab.Features(lc), ml.NonSecurity, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &tree.Forest{Trees: 30, Seed: 8}
		if err := rf.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNNTrainEpoch measures one epoch of RNN training on 200 token
// sequences.
func BenchmarkRNNTrainEpoch(b *testing.B) {
	lab := sharedBenchLab(b)
	var seqs [][]string
	var ys []int
	for _, lc := range lab.NVD[:100] {
		seqs = append(seqs, features.TokenSequence(lc.Commit.Patch()))
		ys = append(ys, ml.Security)
	}
	for _, lc := range lab.NonSec[:100] {
		seqs = append(seqs, features.TokenSequence(lc.Commit.Patch()))
		ys = append(ys, ml.NonSecurity)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rnn := &neural.RNN{Epochs: 1, Seed: 9}
		if err := rnn.FitTokens(seqs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusGeneration measures synthetic commit generation.
func BenchmarkCorpusGeneration(b *testing.B) {
	gen := corpus.NewGenerator(corpus.Config{Seed: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.GenerateWild(10)
	}
}

// BenchmarkCategorize measures the rule-based pattern categorizer.
func BenchmarkCategorize(b *testing.B) {
	p := benchPatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CategorizePatch(p)
	}
}

// BenchmarkAblationOracleNoise measures how annotator mistakes degrade the
// augmentation loop: the verified-security ratio and the label purity of the
// resulting wild dataset under increasing per-annotator error rates (the
// paper relies on three cross-checking experts; this quantifies why).
func BenchmarkAblationOracleNoise(b *testing.B) {
	lab := sharedBenchLab(b)
	seedX := lab.FeatureRows(lab.NVD)
	pool := lab.Items(lab.SetI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var report []string
		for _, errRate := range []float64{0, 0.1, 0.3} {
			noisy := oracle.New(labLabels(lab, pool), oracle.WithErrorRate(errRate), oracle.WithSeed(7))
			res, err := augment.Run(context.Background(), seedX, pool, noisy, 1, augment.Config{MaxRounds: 1})
			if err != nil {
				b.Fatal(err)
			}
			// Purity: how many oracle-accepted candidates are truly security.
			truePos := 0
			for _, id := range res.SecurityIDs {
				if lc, ok := lab.Lookup(id); ok && lc.Security {
					truePos++
				}
			}
			purity := 0.0
			if len(res.SecurityIDs) > 0 {
				purity = float64(truePos) / float64(len(res.SecurityIDs))
			}
			report = append(report, fmt.Sprintf("err=%.1f ratio=%.0f%% purity=%.0f%%",
				errRate, 100*res.Rounds[0].Ratio, 100*purity))
		}
		if i == 0 {
			b.Log(strings.Join(report, "; "))
		}
	}
}

// labLabels extracts ground-truth labels for a pool from the lab.
func labLabels(lab *experiments.Lab, pool []augment.Item) map[string]bool {
	out := make(map[string]bool, len(pool))
	for _, it := range pool {
		if lc, ok := lab.Lookup(it.ID); ok {
			out[it.ID] = lc.Security
		}
	}
	return out
}
